"""The Monte-Carlo training-data generation loop (paper Fig. 1).

``generate_dataset`` repeatedly: samples a process-perturbed parameter
set, sets up and simulates the device, takes the specification
measurements and stores them -- until the requested number of training
instances is reached.

The DUT protocol
----------------

Any object with these three members can be used as a device under test:

``specifications``
    A :class:`~repro.core.specs.SpecificationSet` naming the measured
    columns and their acceptability ranges.
``sample_parameters(rng)``
    Draw one process-disturbed parameter object.
``measure(params)``
    Simulate the instance and return a 1-D value array aligned with
    ``specifications``.

:class:`repro.opamp.OpAmpBench` and :class:`repro.mems.AccelerometerBench`
implement it; so can user-provided devices.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, ReproError
from repro.process.dataset import SpecDataset


@dataclass
class GenerationReport:
    """Bookkeeping for one Monte-Carlo generation run."""

    n_requested: int
    n_simulated: int = 0
    n_failed: int = 0
    failures: list = field(default_factory=list)

    def __str__(self):
        return ("GenerationReport(requested={}, simulated={}, failed={})"
                .format(self.n_requested, self.n_simulated, self.n_failed))


def generate_dataset(dut, n_instances, seed, on_error="resample",
                     max_failures=None, return_report=False):
    """Generate a labeled Monte-Carlo :class:`SpecDataset` for ``dut``.

    Parameters
    ----------
    dut:
        Device under test implementing the DUT protocol (see module
        docstring).
    n_instances:
        Number of device instances in the returned dataset.
    seed:
        Seed for the :class:`numpy.random.Generator` driving the
        process disturbances; generation is fully reproducible.
    on_error:
        ``"resample"`` (default): when a simulation fails to converge
        or a measurement cannot be extracted, record the failure and
        draw a fresh instance.  ``"raise"``: propagate the first error.
    max_failures:
        Abort (raise) after this many failures with ``"resample"``;
        defaults to ``max(10, n_instances // 10)``.
    return_report:
        When True, return ``(dataset, GenerationReport)``.

    Returns
    -------
    SpecDataset or (SpecDataset, GenerationReport)
    """
    if n_instances <= 0:
        raise DatasetError("n_instances must be positive")
    if on_error not in ("resample", "raise"):
        raise DatasetError("on_error must be 'resample' or 'raise'")
    if max_failures is None:
        max_failures = max(10, n_instances // 10)

    rng = np.random.default_rng(seed)
    n_specs = len(dut.specifications)
    values = np.empty((n_instances, n_specs))
    report = GenerationReport(n_requested=n_instances)

    filled = 0
    while filled < n_instances:
        params = dut.sample_parameters(rng)
        try:
            row = np.asarray(dut.measure(params), dtype=float)
        except ReproError as exc:
            report.n_failed += 1
            report.failures.append(str(exc))
            if on_error == "raise":
                raise
            if report.n_failed > max_failures:
                raise DatasetError(
                    "Monte-Carlo generation aborted: {} simulation "
                    "failures (last: {})".format(report.n_failed, exc))
            continue
        finally:
            report.n_simulated += 1
        if row.shape != (n_specs,):
            raise DatasetError(
                "DUT measure() returned shape {}, expected ({},)".format(
                    row.shape, n_specs))
        if not np.all(np.isfinite(row)):
            report.n_failed += 1
            report.failures.append("non-finite measurement")
            if on_error == "raise":
                raise DatasetError("non-finite measurement from DUT")
            if report.n_failed > max_failures:
                raise DatasetError(
                    "Monte-Carlo generation aborted: too many non-finite "
                    "measurements")
            continue
        values[filled] = row
        filled += 1

    dataset = SpecDataset(dut.specifications, values)
    if return_report:
        return dataset, report
    return dataset
