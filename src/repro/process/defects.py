"""Catastrophic-defect injection (paper future work, implemented).

The paper's Monte-Carlo training data models *parametric* variation
only; its future work calls for "test instances that also contain real
defects".  :class:`DefectInjector` wraps any DUT and, with a configured
probability, applies a gross (catastrophic) fault to one sampled
parameter -- e.g. a beam etched to a fraction of its width or a
transistor drawn wildly out of size.  Defective devices produce
out-of-family specification values, which is exactly what spot
defects, shorts and opens do to a manufactured part.

Use it to build defect-laden *evaluation* populations and check that a
compacted test set still catches catastrophic failures::

    bench = AccelerometerBench()
    defective = DefectInjector(bench, defect_rate=0.05, seed=13)
    lot = generate_dataset(defective, 1000, seed=99)
    report = evaluate_predictions(lot.labels, model.predict_dataset(lot))
"""

from dataclasses import fields, replace

import numpy as np

from repro.errors import DatasetError


def _varied_field_names(params):
    """Parameter fields eligible for defect injection.

    Dataclass DUT parameters advertise their process-varied fields via
    ``VARIED`` (op-amp) or ``VARIED_RELATIVE`` (MEMS); plain dicts use
    all of their keys.
    """
    for attr in ("VARIED", "VARIED_RELATIVE"):
        names = getattr(params, attr, None)
        if names:
            return tuple(names)
    if isinstance(params, dict):
        return tuple(params)
    return tuple(f.name for f in fields(params))


class DefectInjector:
    """Wrap a DUT so a fraction of instances carry a gross defect.

    Parameters
    ----------
    dut:
        Any object implementing the DUT protocol (``specifications``,
        ``sample_parameters``, ``measure``).
    defect_rate:
        Probability that a sampled instance receives a defect.
    severity:
        Multiplicative fault magnitude: the chosen parameter is scaled
        by ``severity`` or ``1/severity`` (fair coin).  4.0 models a
        gross lithography/etch failure.
    """

    def __init__(self, dut, defect_rate=0.05, severity=4.0):
        if not 0.0 <= defect_rate <= 1.0:
            raise DatasetError("defect_rate must be in [0, 1]")
        if severity <= 1.0:
            raise DatasetError("severity must exceed 1")
        self._dut = dut
        self.defect_rate = float(defect_rate)
        self.severity = float(severity)
        self.n_injected = 0

    @property
    def specifications(self):
        """The wrapped DUT's specification set."""
        return self._dut.specifications

    @property
    def name(self):
        """Derived DUT name for cache keys and logs."""
        return getattr(self._dut, "name", "dut") + "+defects"

    def sample_parameters(self, rng):
        """Sample from the process model, then maybe inject a defect."""
        params = self._dut.sample_parameters(rng)
        if rng.random() >= self.defect_rate:
            return params
        factor = self.severity if rng.random() < 0.5 else 1.0 / self.severity
        self.n_injected += 1
        if isinstance(params, np.ndarray):
            defective = params.copy()
            idx = int(rng.integers(defective.size))
            defective.flat[idx] *= factor
            return defective
        names = _varied_field_names(params)
        target = names[int(rng.integers(len(names)))]
        if isinstance(params, dict):
            defective = dict(params)
            defective[target] = defective[target] * factor
            return defective
        return replace(params, **{target: getattr(params, target) * factor})

    def measure(self, params):
        """Measure through the wrapped DUT (defects already applied)."""
        return self._dut.measure(params)

    def __getattr__(self, name):
        # measure_batch is exposed exactly when the wrapped DUT has
        # one (defects are injected at sampling time, so the batched
        # kernel sees defective parameter sets like any others); a
        # wrapper around a scalar-only DUT must *not* advertise the
        # batched protocol, or the engine's pre-flight validation
        # would pass and the run would fail mid-flight instead.
        if name == "measure_batch":
            measure = getattr(self._dut, "measure_batch", None)
            if measure is not None:
                return measure
        raise AttributeError(name)

    def __repr__(self):
        return "DefectInjector({!r}, rate={:g}, severity={:g})".format(
            getattr(self._dut, "name", type(self._dut).__name__),
            self.defect_rate, self.severity)
