"""Monte-Carlo process-variation modeling and training-data generation.

This subpackage implements the data-generation flow of paper Fig. 1:
a device description plus a manufacturing process model produce
*training instances*, each simulated and measured against the full
specification list.

* :mod:`repro.process.variation` -- parameter disturbance distributions
  and the :class:`~repro.process.variation.ProcessModel` abstraction;
* :mod:`repro.process.montecarlo` -- the generation loop;
* :mod:`repro.process.dataset` -- the :class:`~repro.process.dataset.SpecDataset`
  container (measurements + labels + persistence).
"""

from repro.process.dataset import SpecDataset
from repro.process.defects import DefectInjector
from repro.process.montecarlo import (
    GenerationReport,
    generate_dataset,
    generate_many,
)
from repro.process.variation import (
    LognormalDisturbance,
    NormalDisturbance,
    Parameter,
    ProcessModel,
    UniformDisturbance,
)

__all__ = [
    "SpecDataset",
    "DefectInjector",
    "generate_dataset",
    "generate_many",
    "GenerationReport",
    "Parameter",
    "ProcessModel",
    "UniformDisturbance",
    "NormalDisturbance",
    "LognormalDisturbance",
]
