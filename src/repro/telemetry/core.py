"""Process-local telemetry registry: counters, gauges, histograms, spans.

One :class:`Telemetry` instance aggregates everything a run wants to
observe about itself -- monotonic counters, point-in-time gauges,
fixed-bucket latency histograms, and nestable :class:`Span` timings
with parent/child trace IDs -- and hands it to the exposition layer
(:mod:`repro.telemetry.export`) for Prometheus scraping or JSON-lines
tracing.

The determinism boundary
------------------------

Telemetry lives strictly **outside** the reproduction's determinism
contract: instrumented code reads clocks and bumps counters, but no
seed, dataset row, disposition, bin or artifact byte ever depends on
whether telemetry is enabled.  ``tests/telemetry/test_invariants.py``
asserts datasets and floor decisions bit-identical with telemetry on
and off, across simulation engines and worker counts.

Zero cost when disabled
-----------------------

The module-level default is :data:`NULL`, a no-op singleton whose
methods return immediately and whose ``span()`` hands back one shared
no-op context manager -- no dict lookups, no allocation, no clock
reads on the hot path.  Instrumented call sites fetch the active
registry once per operation via :func:`get_telemetry` and, where any
preparatory work would be needed, guard it with ``tel.enabled``.

Concurrency
-----------

Span parenthood is tracked through a :class:`contextvars.ContextVar`,
so concurrent asyncio tasks each carry their own span stack: a
``service.request`` span opened in one connection handler never
becomes the parent of a span opened in another.  Worker *processes*
(the simulation pool) have their own registry, which defaults to
:data:`NULL` -- parent processes aggregate worker results into their
own counters instead.
"""

import contextvars
import itertools
import json
import os
import sys
import time

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "NULL",
    "JsonlSink",
    "Span",
    "Telemetry",
    "configure",
    "disable",
    "get_telemetry",
    "set_telemetry",
]

#: Default histogram buckets for second-valued observations: 100 us to
#: 10 s, roughly logarithmic -- wide enough for a micro-batch flush and
#: a whole simulated lot alike.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

#: The active span of the calling context (asyncio-task local).
_CURRENT_SPAN: contextvars.ContextVar = contextvars.ContextVar(
    "repro_telemetry_span", default=None)


def _label_key(labels):
    """Canonical hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Span:
    """One timed operation, nested under whatever span is active.

    Use through :meth:`Telemetry.span`::

        with tel.span("floor.lot", lot="lot0") as span:
            ...
            span.set(devices=n)   # attach attrs discovered mid-flight

    Entering stamps the wall clock and a monotonic start; exiting
    computes ``duration_s``, restores the parent span, emits one JSONL
    ``span`` event to the sink (when one is attached), and folds the
    duration into the per-stage aggregate counters
    (``repro_stage_seconds_total{stage=...}`` /
    ``repro_stage_calls_total{stage=...}``) that the Prometheus
    exposition and ``repro telemetry-report`` read.
    """

    __slots__ = ("_telemetry", "name", "attrs", "trace_id", "span_id",
                 "parent_id", "started_unix", "duration_s", "status",
                 "_t0", "_token")

    def __init__(self, telemetry, name, attrs):
        self._telemetry = telemetry
        self.name = str(name)
        self.attrs = dict(attrs)
        self.trace_id = None
        self.span_id = None
        self.parent_id = None
        self.started_unix = None
        self.duration_s = None
        self.status = "ok"
        self._t0 = None
        self._token = None

    def set(self, **attrs):
        """Attach (or overwrite) span attributes; returns the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = self._telemetry._next_trace_id()
        self.span_id = self._telemetry._next_span_id()
        self._token = _CURRENT_SPAN.set(self)
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._t0
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._telemetry._finish_span(self)
        return False


class _NullSpan:
    """The shared no-op span (:data:`NULL` hands it out)."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class JsonlSink:
    """JSON-lines event sink -- a file path, ``"-"`` for stderr.

    Every event is one JSON object per line, stamped with the owning
    run's correlation ID.  Lines are flushed as written so an external
    tail (or a crashed run's post-mortem) always sees complete events.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        if self.path == "-":
            self._handle = sys.stderr
            self._owned = False
        else:
            self._handle = open(self.path, "a", encoding="utf-8")
            self._owned = True

    def emit(self, event):
        json.dump(event, self._handle, default=str,
                  separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def close(self):
        if self._owned and not self._handle.closed:
            self._handle.close()

    def __repr__(self):
        return "JsonlSink({!r})".format(self.path)


class Telemetry:
    """A process-local registry of counters, gauges, histograms, spans.

    Parameters
    ----------
    run_id:
        Correlation ID stamped on every emitted event (default: a
        wall-clock + PID tag -- telemetry is outside the determinism
        boundary, so non-reproducible IDs are fine).
    sink:
        Optional :class:`JsonlSink` (or anything with ``emit(dict)``)
        receiving one event per finished span plus a final metrics
        snapshot on :meth:`close`.

    Metric naming follows ``repro_<subsystem>_<name>``; counters end
    in ``_total``.  Labels are free-form string pairs.
    """

    enabled = True

    def __init__(self, run_id=None, sink=None):
        self.run_id = run_id or "{}-{}".format(
            time.strftime("%Y%m%dT%H%M%S"), os.getpid())
        self.sink = sink
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._started_unix = time.time()

    # -- metrics ----------------------------------------------------------
    def counter(self, name, value=1, **labels):
        """Add ``value`` (>= 0) to a monotonic counter."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name, value, **labels):
        """Set a gauge to its current value."""
        self._gauges[(name, _label_key(labels))] = float(value)

    def observe(self, name, value, buckets=DEFAULT_TIME_BUCKETS,
                **labels):
        """Record one observation into a fixed-bucket histogram.

        The bucket layout is fixed at the histogram's first
        observation; later calls reuse it (Prometheus histograms
        cannot change shape mid-series).
        """
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            bounds = tuple(float(b) for b in buckets)
            hist = {"buckets": bounds,
                    "counts": [0] * (len(bounds) + 1),
                    "sum": 0.0, "count": 0}
            self._histograms[key] = hist
        value = float(value)
        bounds = hist["buckets"]
        slot = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                slot = i
                break
        hist["counts"][slot] += 1
        hist["sum"] += value
        hist["count"] += 1

    # -- spans ------------------------------------------------------------
    def span(self, name, **attrs):
        """A nestable timed context manager (see :class:`Span`)."""
        return Span(self, name, attrs)

    def current_span(self):
        """The span active in the calling context (or ``None``)."""
        return _CURRENT_SPAN.get()

    def _next_trace_id(self):
        return "{}-t{}".format(self.run_id, next(self._trace_ids))

    def _next_span_id(self):
        return next(self._span_ids)

    def _finish_span(self, span):
        self.counter("repro_stage_calls_total", 1, stage=span.name)
        self.counter("repro_stage_seconds_total", span.duration_s,
                     stage=span.name)
        if self.sink is not None:
            self.sink.emit({
                "event": "span",
                "run": self.run_id,
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "status": span.status,
                "start_unix": round(span.started_unix, 6),
                "duration_s": round(span.duration_s, 9),
                "attrs": span.attrs,
            })

    # -- snapshots --------------------------------------------------------
    def snapshot(self):
        """All metric families in a JSON-friendly structure."""
        return {
            "run": self.run_id,
            "uptime_s": time.time() - self._started_unix,
            "counters": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                {"name": name, "labels": dict(labels),
                 "buckets": list(hist["buckets"]),
                 "counts": list(hist["counts"]),
                 "sum": hist["sum"], "count": hist["count"]}
                for (name, labels), hist in sorted(
                    self._histograms.items())
            ],
        }

    def close(self):
        """Emit the final metrics snapshot and release the sink."""
        if self.sink is not None:
            event = self.snapshot()
            event["event"] = "snapshot"
            self.sink.emit(event)
            self.sink.close()

    def __repr__(self):
        return ("Telemetry(run={!r}, {} counters, {} gauges, "
                "{} histograms)".format(
                    self.run_id, len(self._counters),
                    len(self._gauges), len(self._histograms)))


class NullTelemetry:
    """The disabled registry: every operation is an immediate no-op."""

    enabled = False
    run_id = None
    sink = None

    def counter(self, name, value=1, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, buckets=None, **labels):
        pass

    def span(self, name, **attrs):
        return _NULL_SPAN

    def current_span(self):
        return None

    def snapshot(self):
        return {"run": None, "uptime_s": 0.0, "counters": [],
                "gauges": [], "histograms": []}

    def close(self):
        pass

    def __repr__(self):
        return "NullTelemetry()"


#: The shared disabled registry -- the process-wide default.
NULL = NullTelemetry()

_ACTIVE = NULL


def get_telemetry():
    """The process's active registry (:data:`NULL` when disabled)."""
    return _ACTIVE


def set_telemetry(telemetry):
    """Install ``telemetry`` as the active registry; returns the old one.

    Tests use the returned handle to restore the previous state; the
    CLI installs the registry built by :func:`configure` for the
    duration of a command.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL
    return previous


def configure(path=None, run_id=None):
    """Build and activate a :class:`Telemetry` registry.

    ``path`` attaches a :class:`JsonlSink` (``"-"`` = stderr); ``None``
    keeps an in-process registry with no trace output (metrics are
    still scrapeable through the exposition layer).
    """
    sink = JsonlSink(path) if path is not None else None
    telemetry = Telemetry(run_id=run_id, sink=sink)
    set_telemetry(telemetry)
    return telemetry


def disable():
    """Close and deactivate the active registry (back to :data:`NULL`)."""
    previous = set_telemetry(NULL)
    if previous is not NULL:
        previous.close()
    return previous
