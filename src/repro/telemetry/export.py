"""Exposition of a :class:`~repro.telemetry.core.Telemetry` registry.

Two consumers:

* :func:`prometheus_text` renders the registry in Prometheus
  text-format exposition v0.0.4 -- ``# TYPE`` lines, counters with a
  ``_total`` suffix, histograms as cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.  The service's
  ``GET /metrics?format=prometheus`` serves exactly this string.
* :func:`parse_prometheus` is the matching validating parser, used by
  the golden-file tests and the nightly scrape check -- it rejects
  malformed lines, non-cumulative buckets, and count/bucket
  mismatches, and returns the samples in a comparable structure.

The JSON-lines sink itself lives in :mod:`repro.telemetry.core`
(:class:`~repro.telemetry.core.JsonlSink`); this module only handles
text formats.
"""

import math
import re

__all__ = ["prometheus_text", "parse_prometheus"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"     # metric name
    r"(?:\{(.*)\})?"                   # optional label block
    r"\s+(\S+)"                        # value
    r"(?:\s+(-?\d+))?$")               # optional timestamp
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape_label(value):
    out = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            nxt = next(it, "")
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
        else:
            out.append(ch)
    return "".join(out)


def _format_value(value):
    if value != value:
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_block(labels, extra=None):
    pairs = list(labels)
    if extra:
        pairs = pairs + list(extra)
    if not pairs:
        return ""
    return "{{{}}}".format(",".join(
        '{}="{}"'.format(k, _escape_label(v)) for k, v in pairs))


def _check_name(name):
    if not _NAME_RE.match(name):
        raise ValueError(
            "invalid Prometheus metric name {!r}".format(name))
    return name


def prometheus_text(telemetry):
    """Render ``telemetry`` as Prometheus text exposition v0.0.4.

    Families are emitted in sorted-name order, one ``# TYPE`` line
    each; a counter name that does not already end in ``_total`` gains
    the suffix.  The returned string ends with a newline, as the
    format requires.
    """
    lines = []
    counters = {}
    for (name, labels), value in telemetry._counters.items():
        base = name if name.endswith("_total") else name + "_total"
        counters.setdefault(_check_name(base), []).append(
            (labels, value))
    gauges = {}
    for (name, labels), value in telemetry._gauges.items():
        gauges.setdefault(_check_name(name), []).append((labels, value))
    histograms = {}
    for (name, labels), hist in telemetry._histograms.items():
        histograms.setdefault(_check_name(name), []).append(
            (labels, hist))

    for name in sorted(counters):
        lines.append("# TYPE {} counter".format(name))
        for labels, value in sorted(counters[name]):
            lines.append("{}{} {}".format(
                name, _label_block(labels), _format_value(value)))
    for name in sorted(gauges):
        lines.append("# TYPE {} gauge".format(name))
        for labels, value in sorted(gauges[name]):
            lines.append("{}{} {}".format(
                name, _label_block(labels), _format_value(value)))
    for name in sorted(histograms):
        lines.append("# TYPE {} histogram".format(name))
        for labels, hist in sorted(histograms[name],
                                   key=lambda item: item[0]):
            cumulative = 0
            for bound, count in zip(hist["buckets"], hist["counts"]):
                cumulative += count
                lines.append("{}_bucket{} {}".format(
                    name,
                    _label_block(labels,
                                 extra=[("le", _format_value(
                                     float(bound)))]),
                    cumulative))
            cumulative += hist["counts"][-1]
            lines.append("{}_bucket{} {}".format(
                name, _label_block(labels, extra=[("le", "+Inf")]),
                cumulative))
            lines.append("{}_sum{} {}".format(
                name, _label_block(labels), _format_value(hist["sum"])))
            lines.append("{}_count{} {}".format(
                name, _label_block(labels), hist["count"]))
    return "\n".join(lines) + "\n" if lines else "\n"


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text):
    """Parse and validate text exposition; returns families.

    The result maps family name to ``{"type": ..., "samples": [...]}``
    where each sample is ``(sample_name, labels_dict, value)``.
    Raises :class:`ValueError` on malformed lines, samples without a
    preceding ``# TYPE``, histogram buckets that are not cumulative,
    or a ``+Inf`` bucket that disagrees with ``_count``.
    """
    families = {}
    types = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError("malformed TYPE line: {!r}".format(raw))
            _, _, name, family_type = parts
            if family_type not in ("counter", "gauge", "histogram",
                                   "summary", "untyped"):
                raise ValueError(
                    "unknown metric type {!r}".format(family_type))
            if name in families:
                raise ValueError(
                    "duplicate TYPE for {!r}".format(name))
            families[name] = {"type": family_type, "samples": []}
            types[name] = family_type
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError("malformed sample line: {!r}".format(raw))
        sample_name, label_blob, value_text, _ts = match.groups()
        labels = {}
        if label_blob:
            consumed = 0
            for m in _LABEL_RE.finditer(label_blob):
                labels[m.group(1)] = _unescape_label(m.group(2))
                consumed = m.end()
            rest = label_blob[consumed:].strip().strip(",")
            if rest:
                raise ValueError(
                    "malformed label block: {!r}".format(raw))
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if (sample_name.endswith(suffix)
                    and types.get(trimmed) == "histogram"):
                family = trimmed
                break
        if family not in families:
            raise ValueError(
                "sample {!r} has no preceding # TYPE".format(
                    sample_name))
        families[family]["samples"].append(
            (sample_name, labels, _parse_value(value_text)))

    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series = {}
        for sample_name, labels, value in family["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            entry = series.setdefault(
                key, {"buckets": [], "count": None})
            if sample_name == name + "_bucket":
                if "le" not in labels:
                    raise ValueError(
                        "histogram bucket without le label in "
                        "{!r}".format(name))
                entry["buckets"].append(
                    (_parse_value(labels["le"]), value))
            elif sample_name == name + "_count":
                entry["count"] = value
        for key, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                raise ValueError(
                    "histogram {!r} series has no buckets".format(name))
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                raise ValueError(
                    "histogram {!r} buckets out of order".format(name))
            counts = [c for _, c in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    "histogram {!r} buckets not cumulative".format(name))
            if bounds[-1] != math.inf:
                raise ValueError(
                    "histogram {!r} missing +Inf bucket".format(name))
            if entry["count"] is not None and counts[-1] != entry["count"]:
                raise ValueError(
                    "histogram {!r} +Inf bucket disagrees with "
                    "_count".format(name))
    return families
