"""Unified tracing, metrics, and profiling for the reproduction.

See :mod:`repro.telemetry.core` for the registry and span model,
:mod:`repro.telemetry.export` for Prometheus text exposition, and
:mod:`repro.telemetry.report` for trace rendering.  Telemetry is
strictly outside the determinism boundary: every dataset byte, floor
decision, and artifact is bit-identical with telemetry on or off.
"""

from repro.telemetry.core import (
    DEFAULT_TIME_BUCKETS,
    NULL,
    JsonlSink,
    NullTelemetry,
    Span,
    Telemetry,
    configure,
    disable,
    get_telemetry,
    set_telemetry,
)
from repro.telemetry.export import parse_prometheus, prometheus_text
from repro.telemetry.report import read_trace, render_report, stage_table

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "NULL",
    "JsonlSink",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "configure",
    "disable",
    "get_telemetry",
    "parse_prometheus",
    "prometheus_text",
    "read_trace",
    "render_report",
    "set_telemetry",
    "stage_table",
]
