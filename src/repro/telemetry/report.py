"""Render a JSONL telemetry trace into a per-stage summary table.

``repro telemetry-report TRACE.jsonl`` reads the span events a
:class:`~repro.telemetry.core.JsonlSink` wrote during a run and
aggregates them by span name: call count, total/mean wall time, and --
when spans carry a recognized volume attribute (``rows``, ``devices``,
``slots``, ``requests``) -- total volume and throughput per second.
The final ``snapshot`` event, when present, contributes the run's
counters to the footer.
"""

import json

__all__ = ["read_trace", "stage_table", "render_report"]

#: Span attrs treated as "work volume" for throughput, in priority
#: order -- the first one a stage's spans carry wins.
VOLUME_ATTRS = ("rows", "devices", "slots", "requests")


def read_trace(path):
    """Parse a JSONL trace; returns ``(spans, snapshots)``.

    Unknown event types are ignored, so traces stay forward
    compatible; malformed lines raise :class:`ValueError` with the
    offending line number.
    """
    spans = []
    snapshots = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    "{}:{}: not valid JSON: {}".format(
                        path, lineno, exc)) from exc
            kind = event.get("event")
            if kind == "span":
                spans.append(event)
            elif kind == "snapshot":
                snapshots.append(event)
    return spans, snapshots


def stage_table(spans):
    """Aggregate span events by name; returns sorted row dicts.

    Rows are sorted by descending total time, so the report leads with
    where the run actually went.
    """
    stages = {}
    for span in spans:
        name = span.get("name", "?")
        stage = stages.setdefault(name, {
            "stage": name, "calls": 0, "total_s": 0.0, "errors": 0,
            "volume": 0, "volume_attr": None,
        })
        stage["calls"] += 1
        stage["total_s"] += float(span.get("duration_s", 0.0))
        if span.get("status") == "error":
            stage["errors"] += 1
        attrs = span.get("attrs") or {}
        for attr in VOLUME_ATTRS:
            if attr in attrs:
                try:
                    stage["volume"] += int(attrs[attr])
                except (TypeError, ValueError):
                    break
                stage["volume_attr"] = attr
                break
    rows = []
    for stage in stages.values():
        total = stage["total_s"]
        stage["mean_s"] = total / stage["calls"] if stage["calls"] else 0.0
        stage["per_second"] = (
            stage["volume"] / total
            if stage["volume_attr"] is not None and total > 0 else None)
        rows.append(stage)
    rows.sort(key=lambda row: (-row["total_s"], row["stage"]))
    return rows


def render_report(path, out=None):
    """Print the per-stage table for trace file ``path``.

    Returns the aggregated stage rows (handy for tests).  ``out`` is a
    writable text stream (default: stdout).
    """
    import sys

    out = sys.stdout if out is None else out
    spans, snapshots = read_trace(path)
    run = None
    for event in spans + snapshots:
        run = event.get("run") or run
    out.write("telemetry report: {}\n".format(path))
    if run:
        out.write("run: {}\n".format(run))
    rows = stage_table(spans)
    if not rows:
        out.write("no span events found\n")
        return rows
    header = ("stage", "calls", "total_s", "mean_s", "volume",
              "per_sec", "errors")
    widths = [max(len(h), 10) for h in header]
    widths[0] = max(widths[0], max(len(r["stage"]) for r in rows))
    out.write("  ".join(
        h.ljust(w) for h, w in zip(header, widths)) + "\n")
    for row in rows:
        if row["volume_attr"] is not None:
            volume = "{} {}".format(row["volume"], row["volume_attr"])
            per_sec = "{:.1f}".format(row["per_second"])
        else:
            volume, per_sec = "-", "-"
        cells = (
            row["stage"],
            str(row["calls"]),
            "{:.4f}".format(row["total_s"]),
            "{:.6f}".format(row["mean_s"]),
            volume,
            per_sec,
            str(row["errors"]),
        )
        out.write("  ".join(
            c.ljust(w) for c, w in zip(cells, widths)) + "\n")
    if snapshots:
        counters = snapshots[-1].get("counters", [])
        interesting = [c for c in counters
                       if not c["name"].startswith("repro_stage_")]
        if interesting:
            out.write("\ncounters:\n")
            for counter in interesting:
                labels = counter.get("labels") or {}
                blob = ("{" + ",".join(
                    "{}={}".format(k, v)
                    for k, v in sorted(labels.items())) + "}"
                    if labels else "")
                out.write("  {}{} = {}\n".format(
                    counter["name"], blob, counter["value"]))
    return rows
