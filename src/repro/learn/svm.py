"""The public SVM classifier: :class:`SVC`.

Terminology note (paper Section 2.2): the paper's "eps-SVM" builds a
decision function whose error is controlled to be below ``eps`` on all
but a penalized set of training points.  In the standard soft-margin
dual formulation solved here, that role is played by the KKT tolerance
``tol`` (the optimality gap at which training stops) together with the
penalty ``C`` that prices the unbounded slack errors the paper calls
``zeta``.
"""

import numpy as np

from repro.errors import LearningError
from repro.learn.kernels import kernel_function, resolve_gamma
from repro.learn.smo import solve_smo
from repro.telemetry import get_telemetry

#: Support vectors are the training points with alpha above this.
SUPPORT_THRESHOLD = 1e-8


class SVC:
    """A soft-margin support vector classifier (labels -1/+1).

    Parameters
    ----------
    C:
        Soft-margin penalty.  Larger values fit the training data more
        tightly.
    kernel:
        ``"rbf"`` (default), ``"linear"``, ``"poly"`` or ``"sigmoid"``.
    gamma:
        Kernel width: ``"scale"`` (default), ``"auto"`` or a float.
    degree, coef0:
        Polynomial / sigmoid shape parameters.
    tol:
        SMO KKT-gap stopping tolerance.
    max_iter:
        SMO update ceiling (None -> automatic).

    Notes
    -----
    A training set containing a single class is handled gracefully: the
    classifier degenerates to a constant predictor.  This matters for
    test compaction, where heavily compacted feature sets can make one
    class (temporarily) vanish from a grid-compacted training set.
    """

    def __init__(self, C=10.0, kernel="rbf", gamma="scale", degree=3,
                 coef0=0.0, tol=1e-3, max_iter=None):
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = float(tol)
        self.max_iter = max_iter
        self._fitted = False
        self._constant = None
        self._gram_view = None
        self._column_source = None

    def set_train_columns(self, source):
        """Attach a bounded kernel-column source (or ``None``).

        ``source`` must expose ``matches(X)`` and ``provider(gamma)``
        returning a ``column(i)`` object -- see
        :class:`repro.learn.columns.KernelColumnCache`.  Like the Gram
        view, it is consulted only for the RBF kernel and only when
        ``matches(X)`` confirms the training matrix; unlike the Gram
        view it keeps memory bounded (an LRU set of column blocks), so
        it is the fit path for out-of-core training on populations far
        above :data:`repro.learn.smo.PRECOMPUTE_LIMIT`.  A precomputed
        Gram view, when also attached and matching, wins.
        """
        self._column_source = source
        return self

    def set_train_gram_view(self, view):
        """Attach a precomputed training-Gram provider (or ``None``).

        ``view`` must expose ``matches(X)`` (is this exactly the data
        the view's Gram covers?) and ``gram(gamma)`` returning the RBF
        Gram matrix of the rows passed to :meth:`fit` -- see
        :class:`repro.runtime.kernel_cache.SubsetGramView`.  The view
        is consulted only for the RBF kernel and only when
        ``matches(X)`` confirms the training matrix, so a stale view
        degrades to the direct computation rather than corrupting the
        fit.
        """
        self._gram_view = view
        return self

    # -- estimator API --------------------------------------------------------
    def fit(self, X, y, alpha_init=None):
        """Train on ``X`` (n x m) with labels ``y`` in {-1, +1}.

        ``alpha_init`` optionally warm-starts the SMO solver from a
        previous dual solution (see :func:`repro.learn.smo.solve_smo`).
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise LearningError(
                "X must be (n, m) with matching y; got {} and {}".format(
                    X.shape, y.shape))
        if X.shape[0] == 0:
            raise LearningError("cannot fit on an empty training set")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise LearningError("labels must be -1/+1")

        classes = np.unique(y)
        if classes.size == 1:
            # Degenerate single-class problem: constant prediction.
            self._constant = float(classes[0])
            self._fitted = True
            return self
        self._constant = None

        self.gamma_ = resolve_gamma(self.gamma, X)
        self._kernel = kernel_function(self.kernel, gamma=self.gamma_,
                                       degree=self.degree, coef0=self.coef0)
        tel = get_telemetry()
        view = self._gram_view
        gram = None
        if (view is not None and self.kernel == "rbf"
                and view.matches(X)):
            gram = view.gram(self.gamma_)
            tel.counter("repro_learn_gram_view_hits_total", 1)
        columns = None
        source = self._column_source
        if (gram is None and source is not None and self.kernel == "rbf"
                and source.matches(X)):
            columns = source.provider(self.gamma_)
        with tel.span("train.svc", rows=X.shape[0],
                      kernel=self.kernel) as span:
            result = solve_smo(self._kernel, X, y, self.C, tol=self.tol,
                               max_iter=self.max_iter, gram=gram,
                               columns=columns, alpha_init=alpha_init)
            span.set(iterations=result.iterations,
                     converged=result.converged)
        self.converged_ = result.converged
        self.n_iter_ = result.iterations
        self.intercept_ = result.bias
        #: Full-length dual vector, kept for warm-starting later fits.
        self.alpha_ = result.alpha

        mask = result.alpha > SUPPORT_THRESHOLD
        self.support_ = np.flatnonzero(mask)
        self.support_vectors_ = X[mask]
        self.dual_coef_ = result.alpha[mask] * y[mask]
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def _check_fitted(self):
        if not self._fitted:
            raise LearningError("SVC is not fitted yet")

    def decision_function(self, X, chunk_size=None):
        """Signed distance-like score; positive means class +1.

        ``chunk_size`` bounds the ``(n, n_support)`` kernel-matrix
        allocation by scoring at most that many rows at a time -- the
        streaming production path of :mod:`repro.floor` dispositions
        arbitrarily large batches at fixed memory.  Chunking computes
        the same mathematical quantity per row; the floats can differ
        from the unchunked path in the last ulp (BLAS accumulation
        order depends on the matrix shape), so predicted *labels*
        agree unless a score lies exactly on the decision threshold.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if self._constant is not None:
            return np.full(X.shape[0], self._constant * np.inf)
        if X.shape[1] != self.n_features_:
            raise LearningError(
                "X has {} features; SVC was trained with {}".format(
                    X.shape[1], self.n_features_))
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        if chunk_size is not None and X.shape[0] > int(chunk_size):
            chunk_size = int(chunk_size)
            if chunk_size < 1:
                raise LearningError("chunk_size must be at least 1")
            out = np.empty(X.shape[0])
            for start in range(0, X.shape[0], chunk_size):
                stop = start + chunk_size
                out[start:stop] = self.decision_function(X[start:stop])
            return out
        K = self._kernel(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X, chunk_size=None):
        """Predicted labels in {-1, +1} (ties resolve to +1)."""
        scores = self.decision_function(X, chunk_size=chunk_size)
        return np.where(scores >= 0.0, 1, -1)

    def score(self, X, y):
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def error_rate(self, X, y):
        """Fraction of misclassified instances (the paper's e_p)."""
        return 1.0 - self.score(X, y)

    def clone(self):
        """A new unfitted SVC with identical hyperparameters."""
        return SVC(C=self.C, kernel=self.kernel, gamma=self.gamma,
                   degree=self.degree, coef0=self.coef0, tol=self.tol,
                   max_iter=self.max_iter)

    def get_params(self):
        """Hyperparameters as a dict (for grid search and repr)."""
        return {"C": self.C, "kernel": self.kernel, "gamma": self.gamma,
                "degree": self.degree, "coef0": self.coef0,
                "tol": self.tol, "max_iter": self.max_iter}

    # -- pickling -------------------------------------------------------------
    # The kernel closure and the (potentially huge, process-local) Gram
    # view are dropped on serialization; the kernel is rebuilt from the
    # stored hyperparameters, so fitted models round-trip through
    # ``pickle`` -- a requirement for crossing process boundaries in
    # :mod:`repro.runtime`.
    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_kernel", None)
        state["_gram_view"] = None
        state["_column_source"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_gram_view", None)
        self.__dict__.setdefault("_column_source", None)
        if self._fitted and self._constant is None and hasattr(self, "gamma_"):
            self._kernel = kernel_function(
                self.kernel, gamma=self.gamma_, degree=self.degree,
                coef0=self.coef0)

    def __repr__(self):
        return "SVC(C={:g}, kernel={!r}, gamma={!r})".format(
            self.C, self.kernel, self.gamma)
