"""One-vs-rest SVC banks for multi-bin grade prediction.

A K-bin disposition program needs K binary separations ("grade g vs
every other grade"), all trained on the *same* feature rows.  Fitting
them as K independent :class:`~repro.learn.svm.SVC` runs repeats the
two dominant costs K times:

* the RBF Gram matrix over the training rows -- identical for every
  bin, because only the labels change;
* the SMO solve from a cold (all-zero) dual start.

:class:`OneVsRestSVCBank` shares both.  Every member SVC is attached
to one :class:`~repro.runtime.kernel_cache.SubsetGramView`, so the
(n, n) kernel matrix is computed once and reused K times, and each fit
after the first is warm-started from the previous bin's dual vector:
:func:`repro.learn.smo.solve_smo` repairs an ``alpha_init`` against
the *new* label vector (the same mechanism
:class:`~repro.core.guardband.GuardBandedClassifier` uses to seed its
loose model from its strict one), and one-vs-rest label vectors for
related grades differ on a minority of rows, so the seed is
near-feasible and SMO converges in a fraction of the iterations.
``benchmarks/bench_multibin.py`` measures the combined effect against
K cold fits.
"""

import numpy as np

from repro.errors import LearningError
from repro.learn.svm import SVC
from repro.telemetry import get_telemetry


class OneVsRestSVCBank:
    """K one-vs-rest SVCs sharing one training Gram and warm starts.

    Parameters
    ----------
    classes:
        Ordered class identifiers (bin names or indices).  Prediction
        returns indices into this tuple.
    model_factory:
        Zero-argument callable producing an unfitted binary ``SVC``
        for each class (defaults to ``SVC(C=50.0, gamma="scale")``).
    gram_view:
        Optional :class:`~repro.runtime.kernel_cache.SubsetGramView`
        covering the training rows; shared by every member fit.
    warm_start:
        Seed each member's SMO run from the previous member's dual
        solution (default True).
    """

    def __init__(self, classes, model_factory=None, gram_view=None,
                 warm_start=True, column_source=None):
        self.classes = tuple(classes)
        if len(self.classes) < 2:
            raise LearningError(
                "a one-vs-rest bank needs at least 2 classes; got "
                "{!r}".format(list(self.classes)))
        if len(set(self.classes)) != len(self.classes):
            raise LearningError("bank classes must be unique")
        self.model_factory = model_factory or (
            lambda: SVC(C=50.0, gamma="scale"))
        self._gram_view = gram_view
        self._column_source = column_source
        self.warm_start = bool(warm_start)
        self._fitted = False

    @property
    def n_classes(self):
        return len(self.classes)

    def set_train_gram_view(self, view):
        """Attach/detach the shared training-Gram provider."""
        self._gram_view = view
        for model in getattr(self, "models_", ()):
            if hasattr(model, "set_train_gram_view"):
                model.set_train_gram_view(view)
        return self

    def set_train_columns(self, source):
        """Attach/detach a shared bounded kernel-column source.

        The out-of-core sibling of :meth:`set_train_gram_view`: every
        member fit above the precompute limit draws kernel columns
        from one :class:`~repro.learn.columns.KernelColumnCache`
        instead of K per-member caches -- the bank-level analogue of
        sharing the Gram matrix, at a bounded working set.
        """
        self._column_source = source
        for model in getattr(self, "models_", ()):
            if hasattr(model, "set_train_columns"):
                model.set_train_columns(source)
        return self

    # -- training ---------------------------------------------------------
    def fit(self, X, y):
        """Train one ±1 SVC per class on ``X`` with class labels ``y``.

        ``y`` holds values from ``classes`` (any hashable type).
        Classes absent from ``y`` get a degenerate constant-reject
        member -- a bank deployed for four grades keeps working when a
        training lot happens to contain only three.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise LearningError(
                "X must be (n, m) with matching y; got {} and "
                "{}".format(X.shape, y.shape))
        if X.shape[0] == 0:
            raise LearningError("cannot fit a bank on an empty set")
        unknown = set(np.unique(y).tolist()) - set(self.classes)
        if unknown:
            raise LearningError(
                "labels {} are not among the bank classes {}".format(
                    sorted(map(repr, unknown)), list(self.classes)))

        tel = get_telemetry()
        self.models_ = []
        alpha_prev = None
        with tel.span("train.ovr", rows=X.shape[0],
                      classes=self.n_classes):
            for cls in self.classes:
                target = np.where(y == cls, 1.0, -1.0)
                model = self.model_factory()
                if (self._gram_view is not None
                        and hasattr(model, "set_train_gram_view")):
                    model.set_train_gram_view(self._gram_view)
                if (self._column_source is not None
                        and hasattr(model, "set_train_columns")):
                    model.set_train_columns(self._column_source)
                if self.warm_start and alpha_prev is not None:
                    try:
                        model.fit(X, target, alpha_init=alpha_prev)
                    except TypeError:
                        model.fit(X, target)
                    else:
                        tel.counter("repro_learn_warm_start_reuse_total", 1)
                else:
                    model.fit(X, target)
                alpha_prev = getattr(model, "alpha_", alpha_prev)
                self.models_.append(model)
        if tel.enabled:
            tel.counter("repro_learn_bank_fits_total", 1)
            tel.counter("repro_learn_bank_members_total", self.n_classes)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def _check_fitted(self):
        if not self._fitted:
            raise LearningError("OneVsRestSVCBank is not fitted yet")

    # -- prediction -------------------------------------------------------
    def decision_matrix(self, X, chunk_size=None):
        """Per-class decision scores, shape ``(n, n_classes)``.

        Column k is member k's signed score ("class k vs rest").
        Degenerate single-class members contribute ±inf columns, which
        argmax and margins handle naturally.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        scores = np.empty((X.shape[0], self.n_classes))
        for k, model in enumerate(self.models_):
            scores[:, k] = model.decision_function(X, chunk_size=chunk_size)
        return scores

    def predict_index(self, X, chunk_size=None):
        """Index (into ``classes``) of the highest-scoring member."""
        return self.decision_matrix(X, chunk_size=chunk_size).argmax(axis=1)

    def predict(self, X, chunk_size=None):
        """Predicted class identifiers."""
        idx = self.predict_index(X, chunk_size=chunk_size)
        return np.asarray(self.classes, dtype=object)[idx]

    def margins(self, X, chunk_size=None):
        """Top-1 minus top-2 decision score per device.

        Small margins mark *boundary* devices -- the winning grade is
        barely ahead of the runner-up, so a floor can route them to a
        grade retest.  With any ±inf degenerate scores the margin is
        +inf (no finite runner-up beats the winner) unless two
        degenerate members tie, where it is 0.
        """
        scores = self.decision_matrix(X, chunk_size=chunk_size)
        top2 = np.sort(scores, axis=1)[:, -2:]
        diff = top2[:, 1] - top2[:, 0]
        # inf - inf is nan: two members both claim the device with
        # certainty -> zero margin (maximally ambiguous).
        return np.where(np.isnan(diff), 0.0, diff)

    def score(self, X, y):
        """Mean accuracy against class labels ``y``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    # -- pickling ---------------------------------------------------------
    # Gram views are process-local caches; members already drop them,
    # and the bank must too.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_gram_view"] = None
        state["_column_source"] = None
        state.pop("model_factory", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_gram_view", None)
        self.__dict__.setdefault("_column_source", None)
        # The factory is only needed for (re)fitting; a deserialized
        # bank is for prediction, so a default factory suffices.
        self.__dict__.setdefault(
            "model_factory", lambda: SVC(C=50.0, gamma="scale"))

    def __repr__(self):
        return "OneVsRestSVCBank({} classes{})".format(
            self.n_classes, ", fitted" if self._fitted else "")
