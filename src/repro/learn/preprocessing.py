"""Feature scaling utilities.

The paper (Section 4.3) normalizes every specification by mapping its
acceptability range onto [0, 1], "to ensure uniform convergence of the
multi-dimensional space".  :class:`RangeNormalizer` implements exactly
that; :class:`StandardScaler` is the conventional z-score alternative
offered for experimentation.
"""

import numpy as np

from repro.errors import LearningError


class RangeNormalizer:
    """Affine per-column scaling: ``(x - low) / (high - low)``.

    Construct either from explicit bounds, from a
    :class:`~repro.core.specs.SpecificationSet`
    (:meth:`from_specifications` -- the paper's choice, using the
    acceptability ranges) or from observed data extrema
    (:meth:`from_data`).
    """

    def __init__(self, lows, highs):
        lows = np.asarray(lows, dtype=float)
        highs = np.asarray(highs, dtype=float)
        if lows.shape != highs.shape or lows.ndim != 1:
            raise LearningError("lows/highs must be matching 1-D arrays")
        if np.any(highs <= lows):
            raise LearningError("every high bound must exceed its low bound")
        self.lows = lows
        self.highs = highs

    @classmethod
    def from_specifications(cls, specifications):
        """Bounds taken from the specification acceptability ranges."""
        return cls(specifications.lows, specifications.highs)

    @classmethod
    def from_data(cls, X):
        """Bounds taken from the per-column min/max of ``X``.

        Constant columns receive a unit-width window centred on their
        value so the transform stays well defined.
        """
        X = np.asarray(X, dtype=float)
        lows = X.min(axis=0)
        highs = X.max(axis=0)
        flat = highs <= lows
        lows = np.where(flat, lows - 0.5, lows)
        highs = np.where(flat, highs + 0.5, highs)
        return cls(lows, highs)

    @property
    def n_features(self):
        """Number of columns this normalizer handles."""
        return self.lows.size

    def _check(self, X):
        X = np.asarray(X, dtype=float)
        one_dim = X.ndim == 1
        if one_dim:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise LearningError(
                "X has {} columns, normalizer expects {}".format(
                    X.shape[1], self.n_features))
        return X, one_dim

    def transform(self, X):
        """Map each column's [low, high] window onto [0, 1]."""
        X, one_dim = self._check(X)
        out = (X - self.lows) / (self.highs - self.lows)
        return out[0] if one_dim else out

    def inverse_transform(self, X):
        """Invert :meth:`transform`."""
        X, one_dim = self._check(X)
        out = X * (self.highs - self.lows) + self.lows
        return out[0] if one_dim else out

    def subset(self, indices):
        """Normalizer restricted to the given column indices."""
        indices = np.asarray(indices)
        return RangeNormalizer(self.lows[indices], self.highs[indices])


class StandardScaler:
    """Per-column z-score scaling with stored mean/std."""

    def fit(self, X):
        """Learn per-column mean and standard deviation."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X):
        """Apply the learned scaling."""
        if not hasattr(self, "mean_"):
            raise LearningError("StandardScaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, X):
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        """Invert :meth:`transform`."""
        if not hasattr(self, "mean_"):
            raise LearningError("StandardScaler is not fitted")
        return np.asarray(X, dtype=float) * self.std_ + self.mean_
