"""Sequential minimal optimization (SMO) for the soft-margin SVM dual.

Solves::

    max_a  sum(a) - 1/2 * sum_ij a_i a_j y_i y_j K_ij
    s.t.   0 <= a_i <= C,    sum_i a_i y_i = 0

using the maximal-violating-pair working-set selection of Keerthi et
al. -- the same algorithm family as LIBSVM.  Each iteration picks the
pair ``(i, j)`` that most violates the KKT conditions, solves the
two-variable subproblem analytically, and updates a cached gradient.

The Gram matrix is precomputed when the problem is small enough
(quadratic memory); otherwise kernel columns are computed on demand
and kept in a bounded cache.  A caller that already holds the Gram
matrix (e.g. the subset kernel cache of :mod:`repro.runtime`) can pass
it in directly via ``gram=`` and skip the kernel evaluation entirely.

The solver also supports **warm starts**: ``alpha_init`` seeds the
dual variables from a previous (related) solution.  An infeasible
seed is repaired deterministically -- clipped into the ``[0, C]`` box
and shrunk in index order until the equality constraint
``sum_i alpha_i y_i = 0`` holds -- so a warm start never changes which
problem is solved, only how many iterations it takes.
"""

import numpy as np

from repro.errors import LearningError
from repro.telemetry import get_telemetry

#: Default KKT violation tolerance.
DEFAULT_TOL = 1e-3
#: Problems up to this size precompute the full Gram matrix.
PRECOMPUTE_LIMIT = 6000


class _ColumnCache:
    """Bounded LRU cache of kernel-matrix column *blocks*.

    Columns are fetched a block at a time through one
    ``kernel(X, X[i0:i1])`` call.  Column blocks of width >= 2 go
    through the general GEMM kernel, whose columns are bit-identical
    for **any** block width and alignment (single-column GEMV fetches
    are not), so every column handed out here is independent of the
    blocking -- the invariant that keeps large-problem fits identical
    between this cache and the out-of-core column providers of
    :mod:`repro.learn.columns`.  (The full ``kernel(X, X)`` product
    takes BLAS's symmetric-rank-k path and differs from GEMM in the
    last ulp, which is why column sources only serve problems above
    :data:`PRECOMPUTE_LIMIT`.)
    """

    #: Columns fetched per kernel call.
    BLOCK = 64

    def __init__(self, kernel, X, max_columns, block=None):
        self._kernel = kernel
        self._X = X
        self._n = X.shape[0]
        block = self.BLOCK if block is None else int(block)
        self._block = max(2, min(block, max(2, self._n)))
        self._max_blocks = max(1, max(2, int(max_columns)) // self._block)
        self._blocks = {}
        self._order = []
        #: Plain ints, aggregated once per solve -- the column fetch is
        #: the SMO hot path, so no telemetry call happens per column.
        self.hits = 0
        self.misses = 0

    def block_start(self, i):
        """First column of the block serving column ``i``."""
        i0 = (i // self._block) * self._block
        i1 = min(self._n, i0 + self._block)
        if i1 - i0 < 2:
            # Never fetch a width-1 trailing block (GEMV bits differ
            # from GEMM); widen it backward instead.
            i0 = max(0, i1 - 2)
        return i0

    def column(self, i):
        i0 = self.block_start(i)
        block = self._blocks.get(i0)
        if block is None:
            self.misses += 1
            i1 = min(self._n, i0 + max(self._block, 2))
            block = self._kernel(self._X, self._X[i0:i1])
            if len(self._order) >= self._max_blocks:
                oldest = self._order.pop(0)
                del self._blocks[oldest]
            self._blocks[i0] = block
            self._order.append(i0)
        else:
            self.hits += 1
            if self._order[-1] != i0:
                self._order.remove(i0)
                self._order.append(i0)
        return block[:, i - i0]


def repair_alpha(alpha, y, C):
    """Project a dual seed onto the feasible set of the SMO problem.

    Clips ``alpha`` into ``[0, C]`` and then restores the equality
    constraint ``sum_i alpha_i y_i = 0`` by shrinking, in index order,
    the coefficients whose label contributes to the surplus.  The
    procedure is deterministic, so warm-started runs are reproducible
    bit-for-bit across processes.

    Returns the repaired vector, or ``None`` when no feasible repair
    was found (callers then fall back to a cold start).
    """
    a = np.clip(np.asarray(alpha, dtype=float), 0.0, float(C))
    y = np.asarray(y, dtype=float)
    if a.shape != y.shape:
        return None
    s = float(np.dot(a, y))
    for i in range(a.size):
        if abs(s) <= 1e-12:
            break
        if a[i] > 0.0 and y[i] * s > 0.0:
            take = min(a[i], abs(s))
            a[i] -= take
            s -= take * y[i]
    if abs(float(np.dot(a, y))) > 1e-9:
        return None
    return a


class SMOResult:
    """Solution of the dual problem."""

    def __init__(self, alpha, bias, iterations, converged):
        #: Dual coefficients, one per training sample.
        self.alpha = alpha
        #: Intercept of the decision function.
        self.bias = bias
        #: Number of two-variable updates performed.
        self.iterations = iterations
        #: False when the iteration limit was hit before the KKT gap closed.
        self.converged = converged


def _up_entry(alpha_k, y_k, C):
    """Whether index ``k`` belongs to the I_up working set."""
    return ((y_k > 0 and alpha_k < C - 1e-12)
            or (y_k < 0 and alpha_k > 1e-12))


def _low_entry(alpha_k, y_k, C):
    """Whether index ``k`` belongs to the I_low working set."""
    return ((y_k > 0 and alpha_k > 1e-12)
            or (y_k < 0 and alpha_k < C - 1e-12))


def solve_smo(kernel, X, y, C, tol=DEFAULT_TOL, max_iter=None,
              cache_columns=512, gram=None, columns=None,
              alpha_init=None):
    """Run SMO on ``(X, y)`` with penalty ``C`` and kernel ``kernel``.

    Parameters
    ----------
    kernel:
        Callable ``(A, B) -> Gram`` (see
        :func:`repro.learn.kernels.kernel_function`).  Ignored when
        ``gram`` is given.
    X:
        Training matrix ``(n, m)``.
    y:
        Labels in {-1, +1}.
    C:
        Soft-margin penalty (> 0).
    tol:
        KKT gap tolerance; iteration stops when
        ``b_low - b_up <= 2 * tol``.
    max_iter:
        Hard ceiling on two-variable updates (default ``max(2000,
        200 * n)``).
    cache_columns:
        Kernel-column cache size for large problems.
    gram:
        Optional precomputed ``(n, n)`` Gram matrix; skips all kernel
        evaluations (used by the :mod:`repro.runtime` kernel cache).
    columns:
        Optional external column source with a ``column(i)`` method
        returning kernel column ``i`` (e.g. the bounded block cache of
        :mod:`repro.learn.columns`).  Consulted only for problems
        *above* :data:`PRECOMPUTE_LIMIT`: below it the Gram matrix is
        precomputed exactly as without a source, so attaching one
        never changes small-problem results, while large problems get
        block-fetched columns that are bit-identical to the internal
        cache's at a caller-bounded working set.
    alpha_init:
        Optional dual warm start; repaired with :func:`repair_alpha`
        and silently ignored when no feasible repair exists.

    Returns
    -------
    SMOResult
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n = X.shape[0]
    if y.shape != (n,):
        raise LearningError("y shape mismatch")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise LearningError("labels must be -1/+1")
    if C <= 0:
        raise LearningError("C must be positive")
    if max_iter is None:
        max_iter = max(2000, 200 * n)

    cache = None
    if gram is not None:
        K = np.asarray(gram, dtype=float)
        if K.shape != (n, n):
            raise LearningError(
                "precomputed gram must be ({n}, {n}); got {shape}".format(
                    n=n, shape=K.shape))
        get_col = lambda i: K[i]
        route = "precomputed"
    elif n <= PRECOMPUTE_LIMIT:
        K = kernel(X, X)
        get_col = lambda i: K[i]
        route = "dense"
    elif columns is not None:
        get_col = columns.column
        route = "columns"
    else:
        cache = _ColumnCache(kernel, X, cache_columns)
        get_col = cache.column
        route = "cache"

    alpha = np.zeros(n)
    warm_started = False
    if alpha_init is not None:
        repaired = repair_alpha(alpha_init, y, C)
        if repaired is not None:
            alpha = repaired
            warm_started = True
    # F_i = f_i - y_i where f_i = sum_j alpha_j y_j K_ij (zero at a
    # cold start; reconstructed from the seed's kernel rows otherwise).
    nonzero = np.flatnonzero(alpha)
    if nonzero.size:
        F = np.zeros(n)
        for k in nonzero:
            F += (alpha[k] * y[k]) * get_col(int(k))
        F -= y
    else:
        F = -y.copy()

    # The I_up / I_low working-set membership depends only on (alpha,
    # y), and each iteration changes alpha at exactly two indices, so
    # the masks are maintained incrementally (identical values to the
    # original full recomputation, a fraction of the per-iteration
    # cost).
    up_mask = ((y > 0) & (alpha < C - 1e-12)) | ((y < 0) & (alpha > 1e-12))
    low_mask = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < C - 1e-12))
    up_count = int(np.count_nonzero(up_mask))
    low_count = int(np.count_nonzero(low_mask))
    # Reused selection buffers (masked copies of F, no per-iteration
    # allocation; values identical to the obvious np.where version).
    F_up = np.empty_like(F)
    F_low = np.empty_like(F)

    iterations = 0
    converged = False
    while iterations < max_iter:
        if up_count == 0 or low_count == 0:
            converged = True
            break
        F_up.fill(np.inf)
        np.copyto(F_up, F, where=up_mask)
        F_low.fill(-np.inf)
        np.copyto(F_low, F, where=low_mask)
        i = int(np.argmin(F_up))
        j = int(np.argmax(F_low))
        b_up = F[i]
        b_low = F[j]
        if b_low - b_up <= 2.0 * tol:
            converged = True
            break

        Ki = get_col(i)
        Kj = get_col(j)
        # The diagonal terms come from the fetched columns themselves
        # (Ki[i] is exactly K[i, i]), so no route needs an upfront
        # diagonal pass and all routes agree bitwise.
        eta = Ki[i] + Kj[j] - 2.0 * Ki[j]
        if eta <= 1e-12:
            eta = 1e-12

        # Two-variable analytic step (Platt 1998, with F_k playing the
        # role of Platt's prediction error E_k = f_k - y_k).
        yi, yj = y[i], y[j]
        ai_old, aj_old = alpha[i], alpha[j]
        s = yi * yj
        if s > 0:
            L = max(0.0, ai_old + aj_old - C)
            H = min(C, ai_old + aj_old)
        else:
            L = max(0.0, aj_old - ai_old)
            H = min(C, C + aj_old - ai_old)
        if H - L < 1e-14:
            # Degenerate box for the maximal violating pair: the pair
            # selection can make no further progress.
            break
        aj_new = aj_old + yj * (F[i] - F[j]) / eta
        aj_new = min(max(aj_new, L), H)
        ai_new = ai_old + s * (aj_old - aj_new)

        dai = ai_new - ai_old
        daj = aj_new - aj_old
        if abs(daj) < 1e-14:
            # Numerical stall: no representable progress on this pair.
            break
        alpha[i] = ai_new
        alpha[j] = aj_new
        F += dai * yi * Ki + daj * yj * Kj
        for k in (i, j):
            new_up = _up_entry(alpha[k], y[k], C)
            if new_up != up_mask[k]:
                up_count += 1 if new_up else -1
                up_mask[k] = new_up
            new_low = _low_entry(alpha[k], y[k], C)
            if new_low != low_mask[k]:
                low_count += 1 if new_low else -1
                low_mask[k] = new_low
        iterations += 1

    # Bias from the KKT mid-point of the final up/low bounds.
    up_mask = ((y > 0) & (alpha < C - 1e-12)) | ((y < 0) & (alpha > 1e-12))
    low_mask = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < C - 1e-12))
    candidates = []
    if up_mask.any():
        candidates.append(float(np.min(np.where(up_mask, F, np.inf))))
    if low_mask.any():
        candidates.append(float(np.max(np.where(low_mask, F, -np.inf))))
    if candidates:
        bias = -sum(candidates) / len(candidates)
    else:
        bias = 0.0

    tel = get_telemetry()
    if tel.enabled:
        tel.counter("repro_learn_smo_solves_total", 1, route=route)
        tel.counter("repro_learn_smo_iterations_total", iterations)
        if not converged:
            tel.counter("repro_learn_smo_unconverged_total", 1)
        if warm_started:
            tel.counter("repro_learn_warm_starts_total", 1)
        if cache is not None:
            tel.counter("repro_learn_column_cache_hits_total", cache.hits)
            tel.counter("repro_learn_column_cache_misses_total",
                        cache.misses)
    return SMOResult(alpha, bias, iterations, converged)
