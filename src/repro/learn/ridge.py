"""Ridge regression baseline for the classification-vs-regression ablation.

Paper Section 4.1 argues that earlier statistical-test work used
*regression* (predicting the value of each eliminated specification)
while pass/fail analysis is really a *classification* problem needing
far less training data.  This module provides the regression-side
baseline: a closed-form ridge regressor used to predict eliminated
specification values, which are then thresholded against the
acceptability ranges.
"""

import numpy as np

from repro.errors import LearningError


class RidgeRegressor:
    """Linear least squares with L2 regularization (closed form).

    Fits ``y ~ X @ w + b`` by solving
    ``(X'X + alpha I) w = X'y`` on mean-centred data.  Supports
    multi-output ``y`` so one fit predicts every eliminated
    specification at once.
    """

    def __init__(self, alpha=1e-6):
        if alpha < 0:
            raise LearningError("alpha must be non-negative")
        self.alpha = float(alpha)

    def fit(self, X, y):
        """Fit on ``X`` (n x m) against targets ``y`` (n,) or (n, k)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise LearningError("X must be 2-D")
        self._single_output = y.ndim == 1
        Y = y[:, None] if self._single_output else y
        if Y.shape[0] != X.shape[0]:
            raise LearningError("X and y have different sample counts")
        x_mean = X.mean(axis=0)
        y_mean = Y.mean(axis=0)
        Xc = X - x_mean
        Yc = Y - y_mean
        m = X.shape[1]
        A = Xc.T @ Xc + self.alpha * np.eye(m)
        self.coef_ = np.linalg.solve(A, Xc.T @ Yc)
        self.intercept_ = y_mean - x_mean @ self.coef_
        return self

    def predict(self, X):
        """Predicted targets, matching the shape convention of ``fit``."""
        if not hasattr(self, "coef_"):
            raise LearningError("RidgeRegressor is not fitted")
        X = np.asarray(X, dtype=float)
        out = X @ self.coef_ + self.intercept_
        return out.ravel() if self._single_output else out

    def score(self, X, y):
        """Coefficient of determination R^2 (uniform average)."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = np.sum((y - pred) ** 2, axis=0)
        ss_tot = np.sum((y - y.mean(axis=0)) ** 2, axis=0)
        ss_tot = np.where(ss_tot > 0, ss_tot, 1.0)
        return float(np.mean(1.0 - ss_res / ss_tot))
