"""From-scratch statistical learning: support vector classification.

The paper performs its test compaction with an eps-SVM classifier
(Section 2.2, refs [7, 8]).  Since no external machine-learning package
is assumed, this subpackage implements the full stack:

* :mod:`repro.learn.kernels` -- linear / polynomial / RBF / sigmoid
  kernels and Gram-matrix evaluation;
* :mod:`repro.learn.smo` -- the Platt/Keerthi sequential minimal
  optimization (SMO) dual solver with maximal-violating-pair working
  set selection and a kernel cache;
* :mod:`repro.learn.svm` -- the :class:`~repro.learn.svm.SVC` public
  estimator (fit / predict / decision_function);
* :mod:`repro.learn.ovr` -- one-vs-rest :class:`SVC` banks for
  multi-bin grade prediction, sharing one training Gram matrix and
  SMO warm starts across the member fits;
* :mod:`repro.learn.model_selection` -- train/test splitting, k-fold
  cross-validation and grid search;
* :mod:`repro.learn.preprocessing` -- range normalization (paper
  Section 4.3) and standardization;
* :mod:`repro.learn.ridge` -- a ridge-regression baseline used by the
  classification-versus-regression ablation (paper Section 4.1).
"""

from repro.learn.kernels import kernel_function, KERNELS
from repro.learn.model_selection import (
    KFold,
    cross_val_score,
    grid_search,
    train_test_split,
)
from repro.learn.ovr import OneVsRestSVCBank
from repro.learn.preprocessing import RangeNormalizer, StandardScaler
from repro.learn.ridge import RidgeRegressor
from repro.learn.svm import SVC

__all__ = [
    "SVC",
    "OneVsRestSVCBank",
    "kernel_function",
    "KERNELS",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "grid_search",
    "RangeNormalizer",
    "StandardScaler",
    "RidgeRegressor",
]
