"""Bounded kernel-column sources for out-of-core SVM fits.

:class:`KernelColumnCache` is the fit-side counterpart of the chunked
scoring in :meth:`repro.learn.svm.SVC.decision_function`: instead of a
quadratic Gram matrix, training keeps only a byte-bounded LRU set of
kernel column *blocks* over one shared feature matrix.  Attach it to a
model with :meth:`SVC.set_train_columns` (or the bank-level
:meth:`OneVsRestSVCBank.set_train_columns`), and every fit sharing the
same ``X`` -- the guard-banded strict/loose pair, all one-vs-rest
members -- draws columns from the same cache.

Bit-identity contract
---------------------

A column block is computed as ``kernel_function("rbf", gamma)(X,
X[i0:i1])`` with block width >= 2.  Such blocks go through the general
BLAS GEMM kernel, whose columns are bitwise identical for any block
width and alignment; the row-sum and element-wise stages of the RBF
pipeline are chunk-invariant as well.  Every column served is
therefore bit-identical to the columns the internal
:class:`repro.learn.smo._ColumnCache` would fetch -- so out-of-core
fits reproduce in-RAM large-problem fits exactly, alphas included.
Problems at or below :data:`repro.learn.smo.PRECOMPUTE_LIMIT` ignore
the attached source and precompute the Gram matrix as always (the
full-matrix product takes BLAS's symmetric-rank-k path, which differs
from GEMM in the last ulp, so mixing the two would break identity).
"""

import numpy as np

from repro.errors import LearningError
from repro.learn.kernels import kernel_function

#: Default cache budget: 256 MiB of kernel blocks.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024

#: Columns fetched per kernel evaluation.
BLOCK_COLUMNS = 64


class ColumnProvider:
    """Per-gamma handle served to :func:`repro.learn.smo.solve_smo`."""

    def __init__(self, cache, gamma):
        self._cache = cache
        self.gamma = float(gamma)

    def column(self, i):
        """Kernel column ``i`` (a read-only view into a cached block)."""
        return self._cache.column(self.gamma, i)


class KernelColumnCache:
    """Byte-bounded LRU cache of RBF kernel column blocks over one X.

    Parameters
    ----------
    X:
        The shared ``(n, k)`` training feature matrix (e.g. the thin
        normalized matrix assembled by
        :meth:`repro.data.store.ShardedSpecDataset.normalized_values`).
    max_bytes:
        Budget for cached blocks; at least two blocks are always kept
        so the SMO working pair never thrashes.
    block_columns:
        Columns per fetch (>= 2).
    """

    def __init__(self, X, max_bytes=DEFAULT_BUDGET_BYTES,
                 block_columns=BLOCK_COLUMNS):
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 1:
            raise LearningError(
                "KernelColumnCache needs a non-empty 2-D matrix")
        self._X = X
        n = X.shape[0]
        self._block = max(2, min(int(block_columns), max(2, n)))
        per_block = 8 * n * self._block
        self._max_blocks = max(2, int(max_bytes) // max(1, per_block))
        self._blocks = {}
        self._order = []
        #: Fetch statistics (diagnostics only).
        self.n_fetches = 0
        self.n_hits = 0

    @property
    def X(self):
        return self._X

    @property
    def n_samples(self):
        return self._X.shape[0]

    @property
    def max_blocks(self):
        return self._max_blocks

    @property
    def n_cached_blocks(self):
        return len(self._blocks)

    def matches(self, X):
        """Whether ``X`` is exactly the cached feature matrix."""
        X = np.asarray(X)
        return X.shape == self._X.shape and np.array_equal(X, self._X)

    def provider(self, gamma):
        """A ``column(i)`` source for one kernel width."""
        return ColumnProvider(self, gamma)

    def _block_range(self, i):
        n = self._X.shape[0]
        i0 = (i // self._block) * self._block
        i1 = min(n, i0 + self._block)
        if i1 - i0 < 2:
            i0 = max(0, i1 - 2)
        return i0, i1

    def column(self, gamma, i):
        i = int(i)
        if not 0 <= i < self._X.shape[0]:
            raise LearningError("column index {} out of range".format(i))
        i0, i1 = self._block_range(i)
        key = (float(gamma), i0)
        block = self._blocks.get(key)
        if block is None:
            kernel = kernel_function("rbf", gamma=float(gamma))
            block = kernel(self._X, self._X[i0:i1])
            if len(self._order) >= self._max_blocks:
                oldest = self._order.pop(0)
                del self._blocks[oldest]
            self._blocks[key] = block
            self._order.append(key)
            self.n_fetches += 1
        else:
            self.n_hits += 1
            if self._order[-1] != key:
                self._order.remove(key)
                self._order.append(key)
        return block[:, i - i0]
