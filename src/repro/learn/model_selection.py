"""Model selection utilities: splits, k-fold CV and grid search."""

import itertools

import numpy as np

from repro.errors import LearningError


def train_test_split(X, y, test_fraction=0.25, seed=0):
    """Random split of ``(X, y)`` into train and test parts.

    Returns ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if y.shape[0] != n:
        raise LearningError("X and y have different sample counts")
    if not 0.0 < test_fraction < 1.0:
        raise LearningError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    k = int(round(test_fraction * n))
    if k == 0 or k == n:
        raise LearningError("split produces an empty part")
    test_idx, train_idx = order[:k], order[k:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic shuffled k-fold index generator."""

    def __init__(self, n_splits=5, seed=0):
        if n_splits < 2:
            raise LearningError("n_splits must be at least 2")
        self.n_splits = int(n_splits)
        self.seed = seed

    def split(self, n_samples):
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise LearningError(
                "cannot split {} samples into {} folds".format(
                    n_samples, self.n_splits))
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test_idx = folds[k]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != k])
            yield train_idx, test_idx


def cross_val_score(estimator, X, y, n_splits=5, seed=0):
    """Accuracy of ``estimator`` over k folds (array of per-fold scores).

    The estimator must implement ``clone()``, ``fit(X, y)`` and
    ``score(X, y)`` (as :class:`repro.learn.svm.SVC` does).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(n_splits, seed).split(X.shape[0]):
        model = estimator.clone()
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
    return np.asarray(scores)


#: Per-process tuning context for the parallel grid search; set by the
#: pool initializer so the (potentially large) training matrix crosses
#: the process boundary once per worker instead of once per task.
_GRID_CONTEXT = {}


def _grid_search_init(estimator_factory, X, y, n_splits, seed):
    _GRID_CONTEXT.update(estimator_factory=estimator_factory, X=X, y=y,
                         n_splits=n_splits, seed=seed)


def _grid_search_task(params):
    """Score one hyperparameter configuration (pool-worker friendly)."""
    ctx = _GRID_CONTEXT
    estimator = ctx["estimator_factory"](**params)
    return float(np.mean(cross_val_score(
        estimator, ctx["X"], ctx["y"], n_splits=ctx["n_splits"],
        seed=ctx["seed"])))


def grid_search(estimator_factory, param_grid, X, y, n_splits=3, seed=0,
                n_jobs=1):
    """Exhaustive hyperparameter search by cross-validated accuracy.

    Parameters
    ----------
    estimator_factory:
        Callable ``(**params) -> estimator``; typically
        :class:`repro.learn.svm.SVC` itself.
    param_grid:
        Dict mapping parameter name to a list of candidate values.
    X, y:
        Training data.
    n_splits, seed:
        Cross-validation configuration.
    n_jobs:
        Score configurations across this many worker processes
        (``-1`` = all CPUs).  Each configuration's cross-validation is
        independent and deterministic, so the parallel search returns
        exactly the serial result.  The factory and data must be
        picklable for ``n_jobs > 1``.

    Returns
    -------
    (best_params, best_score, results)
        ``results`` is a list of ``(params, mean_score)`` tuples in
        evaluation order.
    """
    if not param_grid:
        raise LearningError("param_grid must not be empty")
    names = sorted(param_grid)
    configs = [dict(zip(names, values))
               for values in itertools.product(
                   *(param_grid[n] for n in names))]
    from repro.runtime.parallel import parallel_map

    scores = parallel_map(
        _grid_search_task, configs, n_jobs=n_jobs,
        initializer=_grid_search_init,
        initargs=(estimator_factory, X, y, n_splits, seed))
    results = list(zip(configs, scores))
    best_params, best_score = None, -np.inf
    for params, score in results:
        if score > best_score:
            best_params, best_score = params, score
    return best_params, best_score, results
