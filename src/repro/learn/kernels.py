"""Kernel functions and Gram-matrix evaluation for the SVM.

All kernels operate on 2-D arrays ``(n_samples, n_features)`` and
return dense Gram matrices.  ``gamma`` follows the common ``"scale"``
convention (``1 / (n_features * X.var())``) so RBF widths adapt to the
feature scaling automatically.
"""

import numpy as np

from repro.errors import LearningError

#: Names of the supported kernels.
KERNELS = ("linear", "poly", "rbf", "sigmoid")


def resolve_gamma(gamma, X):
    """Turn a ``gamma`` specification into a positive float.

    ``"scale"`` -> ``1 / (n_features * var(X))`` and ``"auto"`` ->
    ``1 / n_features``, mirroring the conventions users expect from
    mainstream SVM implementations.
    """
    if gamma == "scale":
        var = float(np.var(X))
        if var <= 0:
            var = 1.0
        return 1.0 / (X.shape[1] * var)
    if gamma == "auto":
        return 1.0 / X.shape[1]
    gamma = float(gamma)
    if gamma <= 0:
        raise LearningError("gamma must be positive, got {}".format(gamma))
    return gamma


def squared_distances(A, B):
    """Pairwise squared Euclidean distances between rows of A and B."""
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    aa = np.sum(A * A, axis=1)[:, None]
    bb = np.sum(B * B, axis=1)[None, :]
    d2 = aa + bb - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def kernel_function(name, gamma=1.0, degree=3, coef0=0.0):
    """Return ``k(A, B) -> Gram`` for the named kernel.

    Parameters
    ----------
    name:
        One of :data:`KERNELS`.
    gamma:
        Width/scale parameter (resolved value, not ``"scale"``).
    degree, coef0:
        Polynomial/sigmoid shape parameters.
    """
    if name == "linear":
        return lambda A, B: np.asarray(A, dtype=float) @ np.asarray(
            B, dtype=float).T
    if name == "poly":
        def poly(A, B):
            return (gamma * (np.asarray(A, float) @ np.asarray(B, float).T)
                    + coef0) ** degree
        return poly
    if name == "rbf":
        def rbf(A, B):
            return np.exp(-gamma * squared_distances(A, B))
        return rbf
    if name == "sigmoid":
        def sigmoid(A, B):
            return np.tanh(
                gamma * (np.asarray(A, float) @ np.asarray(B, float).T)
                + coef0)
        return sigmoid
    raise LearningError(
        "unknown kernel {!r}; expected one of {}".format(name, KERNELS))
