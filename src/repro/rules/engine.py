"""Declarative tolerance rules: measured specs -> disposition bins.

A production test floor rarely stops at pass/fail.  Measured
specifications map to *bins* -- speed grades, quality tiers,
per-customer tolerance profiles -- and the mapping is a contract that
must be reviewable, serializable and validated, not code.  This module
is that contract layer:

* :class:`ToleranceRule` -- one axis-aligned spec-range predicate
  ("gain in [5000, inf) and bandwidth in [1 MHz, inf) -> PREMIUM"),
  with an optional per-spec **guard band**: the measurement
  uncertainty below which a value this close to a rule boundary cannot
  be trusted to stay on its side.
* :class:`ToleranceProfile` -- an ordered rule set plus a default
  (fallback) bin.  Validation rejects rules whose regions overlap with
  positive measure while assigning different bins (the classic silent
  mis-binning bug) and can prove the acceptable region is fully
  covered by grading rules (no passing device ever falls through to
  the fallback).  Because validated rules never materially overlap,
  the documented first-match semantics are *order-independent*
  everywhere except exact shared boundaries -- deterministic by
  construction.
* :class:`Verdict` -- one device's structured disposition: the bin,
  the rule that fired, whether the match is *clear* (robust to the
  declared measurement uncertainty) or *boundary*, and per-spec
  exceedances against the acceptability ranges.

Everything the streaming floor needs is vectorized through
:meth:`ToleranceProfile.bind`, which pre-compiles the rule set against
a :class:`~repro.core.specs.SpecificationSet` into dense bound
matrices -- one broadcasted comparison per batch, no per-device
Python.

The binary floor is the degenerate case: the 2-bin profile built by
:meth:`ToleranceProfile.binary_default` has one rule (every
specification inside its acceptability range -> ``PASS``) over a
``FAIL`` fallback, and reproduces
:meth:`~repro.core.specs.SpecificationSet.labels` decision-for-
decision.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RuleError

#: Identifier stored in every serialized profile.
PROFILE_FORMAT = "repro/tolerance-profile"
#: Serialized profile schema version.
PROFILE_VERSION = 1

#: Bin names of the degenerate binary profile.
PASS_BIN = "PASS"
FAIL_BIN = "FAIL"

#: The coverage check enumerates the arrangement cells induced by the
#: rule boundaries; beyond this many cells it refuses (with a clear
#: error) rather than stalling the caller.
MAX_COVERAGE_CELLS = 200_000


def _interval(value) -> tuple[float | None, float | None]:
    """Normalize a condition bound pair; ``None`` = unbounded side."""
    try:
        low, high = value
    except (TypeError, ValueError):
        raise RuleError(
            "a condition must be a (low, high) pair; got {!r}".format(
                value)) from None
    low = None if low is None else float(low)
    high = None if high is None else float(high)
    if low is None and high is None:
        raise RuleError("a condition cannot be unbounded on both sides")
    if low is not None and high is not None and not low < high:
        raise RuleError(
            "condition low bound {} must be below high bound {}".format(
                low, high))
    if (low is not None and not math.isfinite(low)) or (
            high is not None and not math.isfinite(high)):
        raise RuleError("condition bounds must be finite (use None "
                        "for an unbounded side)")
    return low, high


@dataclass(frozen=True)
class ToleranceRule:
    """One declarative bin-assignment rule.

    Parameters
    ----------
    bin:
        The bin this rule assigns when it matches.
    conditions:
        ``{spec_name: (low, high)}`` -- the rule matches a device when
        every conditioned specification value lies inside its closed
        interval.  Either side may be ``None`` (unbounded).
        Unconditioned specifications are unconstrained.
    guard:
        Optional ``{spec_name: half_width}`` measurement-uncertainty
        guard bands, in specification units, for conditioned specs: a
        device within ``half_width`` of that condition's boundary is a
        *boundary* (uncertain) match rather than a clear one.
    description:
        Free-form documentation.
    """

    bin: str
    conditions: dict = field(default_factory=dict)
    guard: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self):
        if not self.bin or not isinstance(self.bin, str):
            raise RuleError("rule bin name must be a non-empty string")
        conditions = {}
        for name, bounds in dict(self.conditions).items():
            conditions[str(name)] = _interval(bounds)
        if not conditions:
            raise RuleError(
                "rule for bin {!r} has no conditions; catch-all "
                "behaviour belongs to the profile's default bin".format(
                    self.bin))
        guard = {}
        for name, width in dict(self.guard or {}).items():
            width = float(width)
            if not (math.isfinite(width) and width >= 0.0):
                raise RuleError(
                    "guard half-width for {!r} must be a finite "
                    "non-negative number; got {}".format(name, width))
            if name not in conditions:
                raise RuleError(
                    "guard band on {!r} but the rule has no condition "
                    "on it".format(name))
            guard[str(name)] = width
        object.__setattr__(self, "conditions", conditions)
        object.__setattr__(self, "guard", guard)

    def matches(self, measurements: dict) -> bool:
        """Whether a ``{spec: value}`` mapping satisfies every condition."""
        for name, (low, high) in self.conditions.items():
            if name not in measurements:
                raise RuleError(
                    "measurement for conditioned spec {!r} missing".format(
                        name))
            value = float(measurements[name])
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
        return True

    def to_dict(self) -> dict:
        out = {
            "bin": self.bin,
            "conditions": {
                name: list(bounds)
                for name, bounds in self.conditions.items()
            },
        }
        if self.guard:
            out["guard"] = dict(self.guard)
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ToleranceRule":
        if not isinstance(payload, dict):
            raise RuleError("a rule must be a JSON object")
        unknown = set(payload) - {"bin", "conditions", "guard",
                                  "description"}
        if unknown:
            raise RuleError(
                "unknown rule field(s): {}".format(sorted(unknown)))
        return cls(
            bin=payload.get("bin", ""),
            conditions=payload.get("conditions", {}),
            guard=payload.get("guard", {}),
            description=payload.get("description", ""),
        )


@dataclass(frozen=True)
class Verdict:
    """One device's structured disposition through a profile.

    ``clear`` is False for *boundary* matches: the declared
    measurement uncertainty could move the device into a different
    bin, so a floor running a boundary-retest policy re-measures it.
    """

    #: Assigned bin name.
    bin: str
    #: The :class:`ToleranceRule` that fired (None = default bin).
    rule: ToleranceRule | None
    #: Whether the assignment is robust to the guard-band uncertainty.
    clear: bool
    #: Spec name -> how far the value lies outside its acceptability
    #: range (0.0 for passing specs); empty when no specification set
    #: was supplied.
    exceedances: dict = field(default_factory=dict)

    def __str__(self):
        worst = {k: v for k, v in self.exceedances.items() if v > 0}
        return "Verdict({}{}{})".format(
            self.bin,
            "" if self.clear else ", boundary",
            ", exceeds {}".format(sorted(worst)) if worst else "")


class ToleranceProfile:
    """An ordered, validated tolerance-rule set for one customer/grade.

    Parameters
    ----------
    name:
        Profile identifier (customer or grade-set name).
    rules:
        Ordered :class:`ToleranceRule` sequence.  Rules assigning
        *different* bins must not overlap with positive measure
        (checked by :meth:`validate`); first match wins on shared
        boundaries, making the semantics deterministic and -- away
        from exact boundaries -- independent of rule order.
    default_bin:
        Fallback bin for devices matching no rule (typically the
        scrap/FAIL bin); guarantees full coverage structurally.
    description:
        Free-form documentation.
    """

    def __init__(self, name: str, rules, default_bin: str,
                 description: str = ""):
        if not name or not isinstance(name, str):
            raise RuleError("profile name must be a non-empty string")
        if not default_bin or not isinstance(default_bin, str):
            raise RuleError("default bin must be a non-empty string")
        self.name = name
        self.rules = tuple(
            rule if isinstance(rule, ToleranceRule)
            else ToleranceRule.from_dict(rule)
            for rule in rules)
        self.default_bin = default_bin
        self.description = str(description)
        bins = []
        for rule in self.rules:
            if rule.bin not in bins:
                bins.append(rule.bin)
        if default_bin not in bins:
            bins.append(default_bin)
        #: Bin names in first-appearance order, fallback last.
        self.bins = tuple(bins)

    # -- equality (JSON round-trip contract) ------------------------------
    def __eq__(self, other):
        return (isinstance(other, ToleranceProfile)
                and self.to_dict() == other.to_dict())

    def __hash__(self):
        return hash((self.name, self.rules, self.default_bin))

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    def bin_index(self, bin_name: str) -> int:
        try:
            return self.bins.index(bin_name)
        except ValueError:
            raise RuleError(
                "unknown bin {!r}; profile {!r} defines {}".format(
                    bin_name, self.name, list(self.bins))) from None

    # -- construction ------------------------------------------------------
    @classmethod
    def binary_default(cls, specifications) -> "ToleranceProfile":
        """The degenerate 2-bin profile over a specification set.

        One rule -- every specification inside its acceptability range
        -> ``PASS`` -- over a ``FAIL`` fallback.  Reproduces
        :meth:`~repro.core.specs.SpecificationSet.labels` exactly:
        both use closed-interval comparisons against the same bounds.
        """
        rule = ToleranceRule(
            bin=PASS_BIN,
            conditions={s.name: (s.low, s.high) for s in specifications},
            description="every specification inside its "
                        "acceptability range")
        return cls(
            name="binary-default",
            rules=(rule,),
            default_bin=FAIL_BIN,
            description="degenerate pass/fail profile (2-bin "
                        "compatibility contract)")

    # -- validation --------------------------------------------------------
    def validate(self, specifications=None,
                 check_coverage: bool = True) -> "ToleranceProfile":
        """Check the profile is safe to disposition devices with.

        * every conditioned spec exists in ``specifications`` (when
          given);
        * no two rules assigning different bins overlap with positive
          measure (axis-aligned box intersection; rules for the *same*
          bin may overlap -- a bin region may be a union of boxes);
        * with ``check_coverage`` and ``specifications``, the
          acceptability box is fully covered by the rules, so no
          passing device silently falls through to the default bin.

        Returns ``self``; raises :class:`~repro.errors.RuleError` on
        any violation.
        """
        if not self.rules:
            raise RuleError(
                "profile {!r} has no rules; even the binary profile "
                "declares its PASS region".format(self.name))
        if specifications is not None:
            known = set(specifications.names)
            for rule in self.rules:
                unknown = set(rule.conditions) - known
                if unknown:
                    raise RuleError(
                        "rule for bin {!r} conditions on unknown "
                        "specification(s) {}".format(
                            rule.bin, sorted(unknown)))
        self._check_overlaps()
        if check_coverage and specifications is not None:
            self._check_coverage(specifications)
        return self

    def _check_overlaps(self):
        for i, a in enumerate(self.rules):
            for b in self.rules[i + 1:]:
                if a.bin == b.bin:
                    continue
                if _boxes_overlap(a.conditions, b.conditions):
                    raise RuleError(
                        "rules for bins {!r} and {!r} overlap with "
                        "positive measure; a device in the overlap "
                        "would be binned by rule order alone -- split "
                        "the ranges".format(a.bin, b.bin))

    def _check_coverage(self, specifications):
        """Prove the acceptability box is covered by the rules.

        The rules are axis-aligned boxes, so the arrangement induced
        by their boundaries (clipped to the acceptability box) tiles
        the box into cells each lying entirely inside or outside every
        rule; testing one midpoint per cell is therefore *exact*, not
        a heuristic.  Only dimensions some rule conditions on need
        splitting.
        """
        conditioned = [s for s in specifications
                       if any(s.name in r.conditions for r in self.rules)]
        if not conditioned:
            raise RuleError(
                "profile {!r} conditions on none of the target "
                "specifications".format(self.name))
        axes = []
        n_cells = 1
        for spec in conditioned:
            cuts = {spec.low, spec.high}
            for rule in self.rules:
                bounds = rule.conditions.get(spec.name)
                if bounds is None:
                    continue
                for edge in bounds:
                    if edge is not None and spec.low < edge < spec.high:
                        cuts.add(edge)
            edges = sorted(cuts)
            mids = [(a + b) / 2.0 for a, b in zip(edges, edges[1:])]
            axes.append((spec.name, mids))
            n_cells *= len(mids)
            if n_cells > MAX_COVERAGE_CELLS:
                raise RuleError(
                    "coverage check would enumerate more than {} "
                    "cells; simplify the profile or validate with "
                    "check_coverage=False".format(MAX_COVERAGE_CELLS))
        # Build the midpoint grid over conditioned dims; unconditioned
        # dims sit at their nominal (they cannot affect any rule).
        grids = np.meshgrid(*[mids for _, mids in axes], indexing="ij")
        points = {name: grid.ravel()
                  for (name, _), grid in zip(axes, grids)}
        n = next(iter(points.values())).shape[0]
        covered = np.zeros(n, dtype=bool)
        for rule in self.rules:
            mask = np.ones(n, dtype=bool)
            for name, (low, high) in rule.conditions.items():
                if name not in points:
                    continue  # unconditioned dim: nominal, in range
                v = points[name]
                if low is not None:
                    mask &= v >= low
                if high is not None:
                    mask &= v <= high
            covered |= mask
        if not covered.all():
            hole = int(np.flatnonzero(~covered)[0])
            witness = {name: float(v[hole]) for name, v in points.items()}
            raise RuleError(
                "profile {!r} leaves a coverage gap inside the "
                "acceptable region: no rule matches a passing device "
                "at {} -- it would silently fall to the default bin "
                "{!r}".format(self.name, witness, self.default_bin))

    # -- matching ----------------------------------------------------------
    def bind(self, specifications) -> "BoundProfile":
        """Pre-compile the rule set against a specification set.

        Returns the vectorized matcher the floor's hot path uses; the
        profile is validated (including coverage) first.
        """
        self.validate(specifications)
        return BoundProfile(self, specifications)

    def assign(self, values, specifications) -> np.ndarray:
        """Per-device bin indices for a full measurement matrix."""
        return self.bind(specifications).assign(values)

    def verdict(self, row, specifications,
                uncertainty_scale: float = 1.0) -> Verdict:
        """Structured :class:`Verdict` for one device row."""
        return self.bind(specifications).verdict(
            row, uncertainty_scale=uncertainty_scale)

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "name": self.name,
            "description": self.description,
            "default_bin": self.default_bin,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload) -> "ToleranceProfile":
        if not isinstance(payload, dict):
            raise RuleError("a profile must be a JSON object")
        if payload.get("format", PROFILE_FORMAT) != PROFILE_FORMAT:
            raise RuleError(
                "{!r} is not a tolerance-profile document".format(
                    payload.get("format")))
        version = payload.get("version", PROFILE_VERSION)
        if version != PROFILE_VERSION:
            raise RuleError(
                "profile document version {!r}; this build reads "
                "version {}".format(version, PROFILE_VERSION))
        return cls(
            name=payload.get("name", ""),
            rules=payload.get("rules", ()),
            default_bin=payload.get("default_bin", ""),
            description=payload.get("description", ""),
        )

    def save(self, path) -> "ToleranceProfile":
        """Write the profile as a JSON document (validated first)."""
        self.validate()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return self

    @classmethod
    def load(cls, path) -> "ToleranceProfile":
        """Read a JSON profile written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise RuleError(
                "cannot read tolerance profile {!r}: {}".format(
                    os.fspath(path), exc)) from exc
        profile = cls.from_dict(payload)
        profile.validate()
        return profile

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = ["ToleranceProfile {!r}: {} bin(s) {}".format(
            self.name, self.n_bins, " > ".join(self.bins))]
        for rule in self.rules:
            conds = ", ".join(
                "{}{}".format(name, _format_interval(bounds))
                for name, bounds in rule.conditions.items())
            lines.append("  {} <- {}".format(rule.bin, conds))
        lines.append("  {} <- (no rule matches)".format(self.default_bin))
        return "\n".join(lines)

    def __repr__(self):
        return "ToleranceProfile({!r}, {} rules, bins={})".format(
            self.name, len(self.rules), list(self.bins))


def _format_interval(bounds) -> str:
    low, high = bounds
    return " in [{}, {}]".format(
        "-inf" if low is None else "{:g}".format(low),
        "inf" if high is None else "{:g}".format(high))


def _boxes_overlap(a: dict, b: dict) -> bool:
    """Positive-measure intersection of two condition boxes.

    Unconditioned dimensions are unbounded; closed intervals that
    merely share an edge (measure zero) do not count as overlap.
    """
    for name in set(a) | set(b):
        a_low, a_high = a.get(name, (None, None))
        b_low, b_high = b.get(name, (None, None))
        low = max(_lo(a_low), _lo(b_low))
        high = min(_hi(a_high), _hi(b_high))
        if not low < high:
            return False
    return True


def _lo(bound):
    return -math.inf if bound is None else bound


def _hi(bound):
    return math.inf if bound is None else bound


class BoundProfile:
    """A :class:`ToleranceProfile` compiled against a specification set.

    Dense per-rule bound matrices make matching one broadcasted
    comparison per batch; everything is a pure function of the
    profile, the specification order and the measurements, so
    assignments are identical at any batch size or engine.
    """

    def __init__(self, profile: ToleranceProfile, specifications):
        self.profile = profile
        self.specifications = specifications
        names = specifications.names
        r, m = len(profile.rules), len(names)
        index = {name: j for j, name in enumerate(names)}
        self._lows = np.full((r, m), -np.inf)
        self._highs = np.full((r, m), np.inf)
        self._guards = np.zeros((r, m))
        for i, rule in enumerate(profile.rules):
            for name, (low, high) in rule.conditions.items():
                j = index[name]
                if low is not None:
                    self._lows[i, j] = low
                if high is not None:
                    self._highs[i, j] = high
            for name, width in rule.guard.items():
                self._guards[i, index[name]] = width
        self._rule_bins = np.array(
            [profile.bin_index(rule.bin) for rule in profile.rules])
        self._default_bin = profile.bin_index(profile.default_bin)
        # conflicts[i, k]: rule k fires earlier than rule i and would
        # assign a different bin -- uncertainty pushing a device from
        # rule i's region into rule k's changes the outcome.
        self._earlier_conflicts = [
            np.array([k for k in range(i)
                      if profile.rules[k].bin != profile.rules[i].bin],
                     dtype=int)
            for i in range(r)]
        self._nondefault_rules = np.array(
            [i for i in range(r)
             if profile.rules[i].bin != profile.default_bin], dtype=int)

    @property
    def bins(self):
        return self.profile.bins

    def _check(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != self._lows.shape[1]:
            raise RuleError(
                "measurement matrix must be (n, {}) in specification "
                "order; got shape {}".format(
                    self._lows.shape[1], np.shape(values)))
        return values

    def _masks(self, values, lows, highs) -> np.ndarray:
        """(r, n) rule-match masks for the given bound matrices."""
        V = values[None, :, :]
        return ((V >= lows[:, None, :])
                & (V <= highs[:, None, :])).all(axis=2)

    def match(self, values, uncertainty_scale: float = 1.0):
        """Vectorized first-match assignment of a measurement batch.

        Returns ``(bin_idx, rule_idx, clear)``:

        * ``bin_idx`` -- per-device index into ``profile.bins``;
        * ``rule_idx`` -- the rule that fired (``-1`` = default bin);
        * ``clear`` -- True where the assignment is robust to the
          declared per-spec measurement uncertainty (scaled by
          ``uncertainty_scale``): the device stays inside its rule
          with every conditioned value pulled ``guard`` inward, and no
          earlier different-bin rule could capture it with its bounds
          pushed ``guard`` outward.  Widening the uncertainty never
          changes ``bin_idx`` -- it only moves devices from clear to
          boundary.
        """
        if uncertainty_scale < 0:
            raise RuleError("uncertainty_scale must be non-negative")
        values = self._check(values)
        nominal = self._masks(values, self._lows, self._highs)
        any_match = nominal.any(axis=0)
        rule_idx = np.where(any_match,
                            nominal.argmax(axis=0), -1)
        bin_idx = np.where(any_match,
                           self._rule_bins[nominal.argmax(axis=0)],
                           self._default_bin)

        g = self._guards * float(uncertainty_scale)
        if not g.any():
            return bin_idx, rule_idx, np.ones(values.shape[0], bool)
        shrunk = self._masks(values, self._lows + g, self._highs - g)
        widened = self._masks(values, self._lows - g, self._highs + g)
        clear = np.empty(values.shape[0], dtype=bool)
        default_mask = rule_idx < 0
        if default_mask.any():
            reachable = (widened[self._nondefault_rules].any(axis=0)
                         if self._nondefault_rules.size
                         else np.zeros(values.shape[0], bool))
            clear[default_mask] = ~reachable[default_mask]
        for i in range(len(self.profile.rules)):
            mine = rule_idx == i
            if not mine.any():
                continue
            ok = shrunk[i]
            conflicts = self._earlier_conflicts[i]
            if conflicts.size:
                ok = ok & ~widened[conflicts].any(axis=0)
            clear[mine] = ok[mine]
        return bin_idx, rule_idx, clear

    def assign(self, values) -> np.ndarray:
        """Per-device bin indices (nominal conditions only)."""
        bin_idx, _, _ = self.match(values, uncertainty_scale=0.0)
        return bin_idx

    def bin_counts(self, bin_idx) -> dict:
        """``{bin_name: count}`` histogram of an index array."""
        bin_idx = np.asarray(bin_idx)
        return {name: int(np.sum(bin_idx == i))
                for i, name in enumerate(self.bins)}

    def verdict(self, row, uncertainty_scale: float = 1.0) -> Verdict:
        """Structured :class:`Verdict` for one device row."""
        values = self._check(row)
        if values.shape[0] != 1:
            raise RuleError("verdict() takes a single device row")
        bin_idx, rule_idx, clear = self.match(
            values, uncertainty_scale=uncertainty_scale)
        specs = self.specifications
        v = values[0]
        exceedances = {
            spec.name: float(max(0.0, spec.low - v[j], v[j] - spec.high))
            for j, spec in enumerate(specs)}
        return Verdict(
            bin=self.bins[int(bin_idx[0])],
            rule=(self.profile.rules[int(rule_idx[0])]
                  if rule_idx[0] >= 0 else None),
            clear=bool(clear[0]),
            exceedances=exceedances)

    def __repr__(self):
        return "BoundProfile({!r}, {} rules over {} specs)".format(
            self.profile.name, len(self.profile.rules),
            self._lows.shape[1])
