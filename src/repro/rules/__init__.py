"""Declarative tolerance rules and multi-bin disposition profiles."""

from repro.rules.binning import assign_bins, bin_histogram, grade_indices
from repro.rules.engine import (
    FAIL_BIN,
    PASS_BIN,
    PROFILE_FORMAT,
    PROFILE_VERSION,
    BoundProfile,
    ToleranceProfile,
    ToleranceRule,
    Verdict,
)

__all__ = [
    "FAIL_BIN",
    "PASS_BIN",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "BoundProfile",
    "ToleranceProfile",
    "ToleranceRule",
    "Verdict",
    "assign_bins",
    "bin_histogram",
    "grade_indices",
]
