"""Disposition-aware bin assignment: decisions + profile -> bins.

The bridge between the binary disposition path (ship/scrap, which this
module never alters) and the declarative bin profiles of
:mod:`repro.rules.engine`.  One vectorized function,
:func:`assign_bins`, is shared by the offline tester simulation
(:class:`repro.tester.program.TestProgram`) and the streaming floor
(:class:`repro.floor.engine.TestFloor`), so the two can never disagree
on what a bin means.

Semantics
---------

Bins refine the *disposition*, they never contradict it:

* every scrapped device lands in the profile's default (fallback) bin,
  whatever its measurements say;
* every shipped device lands in a *grade* (non-default) bin.  The
  grade comes from the profile match of the full measurements; a
  shipped device whose measurements match no grade rule (a defect
  escape -- the floor believed it passed) is clamped to the **lowest**
  grade, because the floor shipped it and a shipped device cannot
  carry the scrap bin.

With the degenerate 2-bin profile
(:meth:`repro.rules.engine.ToleranceProfile.binary_default`) this
collapses to a pure relabeling of the decisions -- ``PASS`` iff
shipped, ``FAIL`` iff scrapped -- which is the structural guarantee
behind the binary-parity contract: adding bins cannot change, and
cannot even *express* a change to, the binary outcome.

When a trained one-vs-rest bank
(:class:`repro.learn.ovr.OneVsRestSVCBank`) is supplied, shipped
devices are graded from the *kept* measurements alone (the tester's
real view); devices whose top-two bank scores are closer than
``boundary_margin`` are boundary cases that get the full-measurement
grade instead -- the grade-retest flow -- and are counted in the
returned ``n_bin_retested``.
"""

from __future__ import annotations

import numpy as np

from repro.core.specs import GOOD
from repro.errors import RuleError


def grade_indices(bound) -> list:
    """Indices of the non-default (grade) bins of a bound profile."""
    default = bound.profile.bin_index(bound.profile.default_bin)
    return [i for i in range(len(bound.bins)) if i != default]


def assign_bins(bound, decisions, truth_bins, kept_norm=None, bank=None,
                boundary_margin=0.0):
    """Per-device bin indices consistent with the binary dispositions.

    Parameters
    ----------
    bound:
        The :class:`~repro.rules.engine.BoundProfile` in force.
    decisions:
        Final binary dispositions (+1 ship / -1 scrap) -- already
        resolved by the retest policy; never modified here.
    truth_bins:
        ``bound.assign(full_measurements)`` of the same devices.
    kept_norm:
        Normalized kept-measurement rows (the bank's feature view);
        required when ``bank`` is given.
    bank:
        Optional fitted :class:`~repro.learn.ovr.OneVsRestSVCBank`
        whose classes are grade *bin names* of the profile.
    boundary_margin:
        Bank top-2 score margin below which a shipped device's grade
        is taken from the full measurements instead (grade retest).

    Returns
    -------
    (bins, n_bin_retested)
        ``bins`` indexes into ``bound.bins``; ``n_bin_retested``
        counts the shipped devices routed through the grade retest.
    """
    decisions = np.asarray(decisions)
    truth_bins = np.asarray(truth_bins)
    default = bound.profile.bin_index(bound.profile.default_bin)
    grades = grade_indices(bound)
    if not grades:
        raise RuleError(
            "profile {!r} has no grade bin besides the default; it "
            "cannot bin shipped devices".format(bound.profile.name))

    # Full-measurement grades, with escapes clamped to the lowest
    # grade (shipped devices cannot carry the scrap bin).
    true_grade = np.where(truth_bins == default, grades[-1], truth_bins)

    shipped = decisions == GOOD
    n_bin_retested = 0
    if bank is None or not shipped.any():
        grade = true_grade
    else:
        if kept_norm is None:
            raise RuleError(
                "bank grading needs the normalized kept measurements")
        class_bins = np.array(
            [bound.profile.bin_index(c) for c in bank.classes])
        rows = np.asarray(kept_norm, dtype=float)[shipped]
        predicted = class_bins[bank.predict_index(rows)]
        if boundary_margin > 0.0:
            boundary = bank.margins(rows) < boundary_margin
            predicted = np.where(boundary, true_grade[shipped], predicted)
            n_bin_retested = int(np.sum(boundary))
        grade = true_grade.copy()
        grade[shipped] = predicted

    bins = np.where(shipped, grade, default)
    return bins, n_bin_retested


def bin_histogram(bins, names) -> dict:
    """``{bin_name: count}`` over an index array (all names present)."""
    bins = np.asarray(bins)
    return {name: int(np.sum(bins == i)) for i, name in enumerate(names)}
