"""Command-line entry point: run the paper's experiments from a shell.

::

    python -m repro.cli table1            # op-amp specification table
    python -m repro.cli table3 --train 500
    python -m repro.cli fig5 --tolerance 0.02
    python -m repro.cli fig5 --jobs 4     # parallel compaction engine
    python -m repro.cli fig5 --sim-jobs 4 # parallel Monte-Carlo generation
    python -m repro.cli cost --sim-jobs -1
    python -m repro.cli batch --lots 4 --jobs 4 --sim-jobs 4
    python -m repro.cli deploy --device opamp --out opamp.rtp
    python -m repro.cli floor --artifact opamp.rtp --lots 3 --devices 500
    python -m repro.cli serve --artifact opamp=opamp.rtp --port 8731
    python -m repro.cli serve --artifact opamp=opamp.rtp --workers 4
    python -m repro.cli loadgen --url http://127.0.0.1:8731 \
        --artifact opamp.rtp --device opamp --devices 200
    python -m repro.cli floor --artifact opamp.rtp --telemetry t.jsonl
    python -m repro.cli telemetry-report t.jsonl

The long-running commands accept ``--telemetry [PATH]``: spans and
metrics from every layer the command touches are recorded into a
process-local registry (JSONL trace to PATH, ``-`` = stderr) and
summarized by ``telemetry-report``.  Telemetry is an observer only --
datasets, decisions and artifacts are bit-identical with it on or
off.

Each subcommand simulates its Monte-Carlo populations on the fly (no
cache) at a CLI-chosen scale, runs the corresponding experiment and
prints the same rows the paper reports.  For the cached, asserted
variants use ``pytest benchmarks/ --benchmark-only``.

On the simulating commands (``fig5``, ``table3``, ``cost``,
``batch``), ``--sim-jobs N`` fans the Monte-Carlo device simulations
out across worker processes through
:mod:`repro.runtime.simulation` -- per-instance seeding makes the
populations bit-identical at any worker count -- and
``--sim-engine batched`` additionally stacks whole instance
populations into single LAPACK solves through the batched MNA kernel
(:mod:`repro.circuit.batch`; identical datasets, several times faster
per core); ``batch`` simulates all its lots through one scheduler.
On the greedy-loop commands
(``fig5``, ``batch``), ``--jobs N`` additionally routes compaction
through the parallel cache-aware engine of :mod:`repro.runtime`
(identical results at any worker count, less wall clock); ``batch``
compacts the lots through one
:meth:`~repro.runtime.engine.CompactionEngine.run_many` scheduler.

``deploy`` trains a compacted program and saves it as a versioned
:class:`~repro.floor.artifact.TestProgramArtifact` file; ``floor``
loads such an artifact in a fresh process and streams simulated
production lots through the :class:`~repro.floor.engine.TestFloor`,
reporting per-lot yield loss, defect escape, cost, throughput and
drift alarms.  The round trip is deterministic: the same artifact and
seeds disposition identically at any
``--batch-size``/``--sim-jobs``/``--sim-engine``.

``serve`` hosts a registry of deployed artifacts behind the asyncio
HTTP/JSON floor service of :mod:`repro.service` (micro-batching,
hot-swap, backpressure, ``/metrics``); with ``--workers N`` it scales
out to N worker processes behind the device-hash sharding router of
:mod:`repro.service.cluster` (atomic control-plane fan-out, crash
respawn, per-worker metrics -- decisions bit-identical at any worker
count); ``loadgen`` replays deterministic seed-tree traffic against a
running service and exits non-zero unless every served decision is
bit-identical to an offline :class:`~repro.floor.engine.TestFloor`
pass over the same devices.
"""

import argparse
import sys

from repro import compact_specification_tests


def _print_rows(header, rows):
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append("{:.3f}".format(value).ljust(w))
            else:
                cells.append(str(value).ljust(w))
        print("  ".join(cells))


def cmd_table1(args):
    """Measure the nominal op-amp and print Table 1."""
    from repro.opamp import OPAMP_SPECIFICATIONS, measure_opamp

    values = measure_opamp()
    _print_rows(["specification", "unit", "nominal", "range"],
                [(s.name, s.unit, values[s.name],
                  "{:g} .. {:g}".format(s.low, s.high))
                 for s in OPAMP_SPECIFICATIONS])
    return 0


def cmd_table2(args):
    """Measure the nominal accelerometer and print Table 2."""
    from repro.mems import MEMS_SPECIFICATIONS, measure_accelerometer

    values = measure_accelerometer()
    _print_rows(["test", "unit", "nominal", "range"],
                [(s.name, s.unit, values[s.name],
                  "{:g} .. {:g}".format(s.low, s.high))
                 for s in MEMS_SPECIFICATIONS])
    return 0


def _populations(bench, requests, args):
    """Populations for ``(n, seed)`` requests: simulate or replay.

    Without ``--dataset`` every request is simulated on the fly
    through the parallel generation engine.  With ``--dataset DIR``
    each population comes from a manifested shard store under ``DIR``
    (:func:`repro.data.ensure_dataset`): rows already on disk are
    memory-mapped and only the shortfall is simulated -- and the rows
    are bit-identical to the direct simulation, so results match
    either way.
    """
    root = getattr(args, "dataset", None)
    if root is not None:
        from repro.data import ensure_dataset

        return [ensure_dataset(root, bench, n, seed,
                               n_jobs=args.sim_jobs,
                               engine=args.sim_engine).head(n)
                for n, seed in requests]
    from repro.process.montecarlo import generate_many

    return generate_many([(bench, n, seed) for n, seed in requests],
                         n_jobs=args.sim_jobs, engine=args.sim_engine)


def _simulate_pair(bench, args):
    """Train/test populations through the parallel generation engine."""
    return _populations(
        bench,
        [(args.train, args.seed), (args.test, args.seed + 1)], args)


def _bench(device):
    """Device-under-test bench for a CLI ``--device`` choice."""
    if device == "opamp":
        from repro.opamp import OpAmpBench

        return OpAmpBench()
    from repro.mems import AccelerometerBench

    return AccelerometerBench()


def _default_cost_model(device):
    """Uniform costs (op-amp) or per-insertion fixture costs (MEMS).

    The MEMS model reproduces the paper's Section 6 setting: every
    measurement costs 1 unit and each temperature insertion pays a
    fixture (soak) cost once -- 25 units hot/cold, 2 at room.
    """
    from repro.core.costmodel import TestCostModel

    if device == "opamp":
        from repro.opamp import OPAMP_SPECIFICATIONS

        return TestCostModel.uniform(OPAMP_SPECIFICATIONS.names)
    from repro.mems import TEMPERATURES, tests_at_temperature

    costs, groups = {}, {}
    for temp in TEMPERATURES:
        for name in tests_at_temperature(temp):
            costs[name] = 1.0
            groups[name] = "{:g}C".format(temp)
    return TestCostModel(costs, groups,
                         {"-40C": 25.0, "27C": 2.0, "80C": 25.0})


def cmd_fig5(args):
    """Greedy op-amp compaction trend (Fig. 5)."""
    from repro.opamp import OpAmpBench

    bench = OpAmpBench()
    print("Simulating {} + {} op-amp instances...".format(
        args.train, args.test), file=sys.stderr)
    train, test = _simulate_pair(bench, args)
    result = compact_specification_tests(
        train, test, tolerance=args.tolerance, guard_band=args.guard,
        n_jobs=args.jobs if args.jobs != 1 else None)
    _print_rows(["test", "decision", "YL %", "DE %", "guard %"],
                [(r["test"],
                  "eliminated" if r["eliminated"] else "kept",
                  r["yield_loss_pct"], r["defect_escape_pct"],
                  r["guard_pct"])
                 for r in result.history_table()])
    print()
    print(result.summary())
    return 0


def cmd_table3(args):
    """MEMS temperature-test elimination (Table 3)."""
    from repro.core.compaction import TestCompactor
    from repro.mems import AccelerometerBench, tests_at_temperature

    bench = AccelerometerBench()
    print("Simulating {} + {} accelerometer instances...".format(
        args.train, args.test), file=sys.stderr)
    train, test = _simulate_pair(bench, args)
    compactor = TestCompactor(guard_band=args.guard)
    cold = tests_at_temperature(-40)
    hot = tests_at_temperature(80)
    rows = []
    for label, eliminated in (("-40", cold), ("80", hot),
                              ("both", cold + hot)):
        _, report = compactor.evaluate_subset(train, test, eliminated)
        rows.append((label, 100 * report.defect_escape_rate,
                     100 * report.yield_loss_rate,
                     100 * report.guard_rate))
    _print_rows(["eliminated", "DE %", "YL %", "guard %"], rows)
    return 0


def cmd_cost(args):
    """Accelerometer cost-reduction headline."""
    from repro.core.compaction import TestCompactor
    from repro.mems import AccelerometerBench, tests_at_temperature
    from repro.tester import LookupTable, TestProgram

    bench = AccelerometerBench()
    train, test = _simulate_pair(bench, args)
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    model, _ = TestCompactor(guard_band=args.guard).evaluate_subset(
        train, test, eliminated)

    cost_model = _default_cost_model("mems")
    outcome = TestProgram(LookupTable(model), cost_model).run(test)
    print(outcome.summary())
    return 0


def cmd_batch(args):
    """Compact several Monte-Carlo lots through one batch scheduler."""
    from repro.runtime import CompactionEngine

    bench = _bench(args.device)
    print("Simulating {} lots of {} + {} {} instances...".format(
        args.lots, args.train, args.test, args.device), file=sys.stderr)
    requests = []
    for lot in range(args.lots):
        seed = args.seed + 2 * lot
        requests.append((args.train, seed))
        requests.append((args.test, seed + 1))
    # One scheduler simulates every lot's instances concurrently; the
    # per-instance seed tree keeps the datasets identical to 2*lots
    # separate generate_dataset calls at any --sim-jobs.
    populations = _populations(bench, requests, args)
    pairs = list(zip(populations[0::2], populations[1::2]))

    engine = CompactionEngine(
        tolerance=args.tolerance, guard_band=args.guard, n_jobs=args.jobs)
    results = engine.run_many(pairs)

    _print_rows(
        ["lot", "kept", "eliminated", "YL %", "DE %", "guard %"],
        [(lot, len(r.kept), len(r.eliminated),
          100 * r.final_report.yield_loss_rate,
          100 * r.final_report.defect_escape_rate,
          100 * r.final_report.guard_rate)
         for lot, r in enumerate(results)])
    always = set.intersection(*(set(r.eliminated) for r in results)) \
        if results else set()
    print()
    print("eliminated in every lot ({}): {}".format(
        len(always), ", ".join(sorted(always)) or "-"))
    return 0


def _fail(message):
    """One-line error on stderr + the conventional failure exit code.

    The CLI contract for operator errors (missing file, corrupt
    artifact, unreachable service) is a clean single-line message, not
    a traceback.
    """
    print("error: {}".format(message), file=sys.stderr)
    return 2


def cmd_deploy(args):
    """Train a compacted test program and save a deployable artifact."""
    import os

    from repro.core.pipeline import CompactionPipeline

    out = args.out or "{}.rtp".format(args.device)
    # Fail on an unwritable destination *before* minutes of simulation
    # and training, not at the final save.
    out_dir = os.path.dirname(os.path.abspath(out))
    if not os.path.isdir(out_dir):
        return _fail("output directory does not exist: {}".format(out_dir))
    if not os.access(out_dir, os.W_OK):
        return _fail("output directory is not writable: {}".format(out_dir))

    profile = None
    if args.profile is not None:
        from repro.errors import RuleError
        from repro.rules import ToleranceProfile

        try:
            profile = ToleranceProfile.load(args.profile)
        except RuleError as exc:
            return _fail(exc)

    bench = _bench(args.device)
    print("Simulating {} + {} {} instances...".format(
        args.train, args.test, args.device), file=sys.stderr)
    train, test = _simulate_pair(bench, args)
    pipeline = CompactionPipeline(
        tolerance=args.tolerance, guard_band=args.guard,
        n_jobs=args.jobs if args.jobs != 1 else None)
    result, artifact = pipeline.deploy(
        train, test, cost_model=_default_cost_model(args.device),
        device=bench.name, train_seed=args.seed,
        lookup_resolution=args.lookup_resolution)
    if profile is not None:
        from repro.errors import RuleError

        try:
            artifact = artifact.with_profile(profile, train=train)
        except RuleError as exc:
            # e.g. rule bounds that contradict the bench's spec ranges.
            return _fail(exc)
    try:
        artifact.save(out)
    except OSError as exc:
        return _fail("cannot write artifact {}: {}".format(out, exc))
    print(result.summary())
    print()
    print(artifact.describe())
    print("saved: {}".format(out))
    return 0


def cmd_floor(args):
    """Load an artifact and stream simulated production lots through it."""
    from repro.errors import ArtifactError
    from repro.floor import TestFloor, TestProgramArtifact

    try:
        artifact = TestProgramArtifact.load(args.artifact)
    except ArtifactError as exc:
        return _fail(exc)
    except OSError as exc:
        return _fail("cannot read artifact {}: {}".format(
            args.artifact, exc))
    device = args.device or artifact.provenance.get("device")
    aliases = {"mems-accelerometer": "mems"}
    device = aliases.get(device, device)
    if device not in ("opamp", "mems"):
        print("artifact does not name a known device (provenance says "
              "{!r}); pass --device".format(
                  artifact.provenance.get("device")), file=sys.stderr)
        return 2
    from repro.errors import ReproError

    bench = _bench(device)
    floor = TestFloor(artifact, retest_policy=args.policy,
                      batch_size=args.batch_size)
    lots = [(args.devices, args.seed + index)
            for index in range(args.lots)]
    print("Streaming {} lot(s) of {} simulated {} devices...".format(
        args.lots, args.devices, device), file=sys.stderr)
    try:
        report = floor.run_lots(bench, lots, n_jobs=args.sim_jobs,
                                engine=args.sim_engine,
                                dataset_root=args.dataset)
    except ReproError as exc:
        # e.g. an artifact trained on a different bench's ranges, or
        # an exhausted simulation failure budget.
        return _fail(exc)
    _print_rows(
        ["lot", "devices", "YL %", "DE %", "guard %", "cost/dev",
         "dev/min", "alarms"],
        report.rows())
    bin_counts = report.bin_counts
    if bin_counts:
        names = (report.lots[0].bin_names if report.lots
                 else tuple(bin_counts))
        print()
        print("bins: " + "  ".join(
            "{}={}".format(name, bin_counts.get(name, 0))
            for name in names))
        if report.n_bin_retested:
            print("grade retests: {}".format(report.n_bin_retested))
    print()
    for alarm in report.alarms:
        print(alarm)
        print("  -> {}".format(alarm.recommendation))
    print(report.summary().splitlines()[-1])
    return 0


def _default_shard_rows():
    from repro.data import DEFAULT_SHARD_ROWS

    return DEFAULT_SHARD_ROWS


def _print_dataset(store):
    """One summary block per store: identity line, shards, last event."""
    print(repr(store))
    print("root: {}".format(store.root))
    print("seed: {}  engine: {}  dtype: {}".format(
        store.seed, store.engine, store.manifest.dtype))
    events = store.manifest.events
    if events:
        last = events[-1]
        rate = last.get("instances_per_minute")
        print("last {}: rows {} -> {} in {:.2f}s{}".format(
            last.get("op", "?"), last.get("start", "?"),
            last.get("stop", "?"), last.get("elapsed_s", 0.0),
            "" if rate is None else
            " ({:.0f} instances/min)".format(rate)))


def cmd_dataset_generate(args):
    """Generate a manifested shard store for a device population."""
    from repro.data import generate_shards
    from repro.errors import ReproError

    bench = _bench(args.device)
    print("Generating {} {} instances into {}...".format(
        args.rows, args.device, args.root), file=sys.stderr)
    shard_rows = args.shard_rows or _default_shard_rows()
    try:
        store = generate_shards(
            args.root, bench, args.rows, args.seed,
            shard_rows=shard_rows, n_jobs=args.sim_jobs,
            engine=args.sim_engine)
    except ReproError as exc:
        return _fail(exc)
    _print_dataset(store)
    return 0


def cmd_dataset_extend(args):
    """Grow an existing shard store without re-simulating its prefix."""
    from repro.data import ShardedSpecDataset, extend_shards
    from repro.errors import ReproError

    aliases = {"mems-accelerometer": "mems"}
    try:
        existing = ShardedSpecDataset(args.root)
    except ReproError as exc:
        return _fail(exc)
    device = args.device or aliases.get(existing.device, existing.device)
    if device not in ("opamp", "mems"):
        return _fail("store names unknown device {!r}; pass "
                     "--device".format(existing.device))
    bench = _bench(device)
    print("Extending {} from {} to {} rows...".format(
        args.root, existing.n_rows, args.rows), file=sys.stderr)
    try:
        store = extend_shards(args.root, bench, args.rows,
                              n_jobs=args.sim_jobs)
    except ReproError as exc:
        return _fail(exc)
    _print_dataset(store)
    return 0


def cmd_dataset_info(args):
    """Print a shard store's manifest summary."""
    from repro.data import ShardedSpecDataset
    from repro.errors import ReproError

    try:
        store = ShardedSpecDataset(args.root)
    except ReproError as exc:
        return _fail(exc)
    _print_dataset(store)
    print()
    _print_rows(
        ["shard", "rows", "failed", "simulated", "sha256"],
        [(entry["file"], "{}:{}".format(entry["start"], entry["stop"]),
          entry["n_failed"], entry["n_simulated"],
          entry["sha256"][:12])
         for entry in store.manifest.shards])
    return 0


def cmd_dataset_verify(args):
    """Re-hash every shard against the manifest; fail on any mismatch.

    With ``--repair``, corrupted shards are regenerated from the
    per-instance seed tree (any shard in isolation) and re-verified
    hash-identical to the manifest before the command reports ok.
    """
    from repro.data import ShardedSpecDataset, repair_shards
    from repro.errors import ReproError

    try:
        store = ShardedSpecDataset(args.root)
    except ReproError as exc:
        return _fail(exc)
    if getattr(args, "repair", False):
        aliases = {"mems-accelerometer": "mems"}
        device = args.device or aliases.get(store.device, store.device)
        if device not in ("opamp", "mems"):
            return _fail("store names unknown device {!r}; pass "
                         "--device".format(store.device))
        try:
            repaired = repair_shards(args.root, _bench(device),
                                     n_jobs=args.sim_jobs)
        except ReproError as exc:
            return _fail(exc)
        if repaired:
            print("repaired shard(s) {} from the seed tree".format(
                ", ".join(str(i) for i in repaired)), file=sys.stderr)
        store = ShardedSpecDataset(args.root)
    try:
        checked = store.verify()
    except ReproError as exc:
        return _fail(exc)
    print("ok: {} shard(s), {} rows verified".format(
        checked, store.n_rows))
    return 0


def _artifact_spec(value):
    """argparse type for serve --artifact: name=path or name=version=path."""
    parts = value.split("=")
    if len(parts) == 2:
        name, version, path = parts[0], "1", parts[1]
    elif len(parts) == 3:
        name, version, path = parts
    else:
        raise argparse.ArgumentTypeError(
            "must be name=path or name=version=path, not {!r}".format(value))
    if not name or not path:
        raise argparse.ArgumentTypeError(
            "must be name=path or name=version=path, not {!r}".format(value))
    return name, version, path


def _serve_cluster(args):
    """Serve through the multi-worker sharding cluster router."""
    import asyncio
    import os

    from repro.errors import ReproError
    from repro.service import ClusterService

    # Fail on a missing artifact file before spawning N processes that
    # would each discover it independently.
    artifacts = args.artifact or []
    for name, version, path in artifacts:
        if not os.path.isfile(path):
            return _fail("artifact file does not exist: {}".format(path))
    try:
        cluster = ClusterService(
            registrations=artifacts,
            n_workers=args.workers,
            retest_policy=args.policy,
            max_batch_size=args.max_batch,
            max_latency=args.max_latency_ms / 1000.0,
            max_pending=args.max_pending,
            max_resident=args.max_resident,
            admin_token=args.admin_token,
            health_interval=args.health_interval,
            state_dir=args.state_dir)
    except ReproError as exc:
        # e.g. a corrupt journal in --state-dir: refuse to serve from
        # a manifest reconstructed past corruption.
        return _fail(exc)

    async def _serve():
        await cluster.start(args.host, args.port)
        print("serving {} artifact(s) on http://{}:{} across {} "
              "worker(s)".format(len(cluster._manifest), args.host,
                                 cluster.port, args.workers),
              file=sys.stderr, flush=True)
        try:
            await cluster.serve_forever()
        finally:
            await cluster.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except ReproError as exc:
        return _fail(exc)
    except OSError as exc:
        return _fail("cannot bind {}:{}: {}".format(
            args.host, args.port, exc))
    return 0


def cmd_serve(args):
    """Serve deployed artifacts over the asyncio HTTP floor service.

    With ``--workers N`` (N >= 2) the artifacts are served by N worker
    processes behind a device-hash sharding router instead of one
    in-process service; decisions are bit-identical either way.
    """
    import asyncio

    from repro.errors import ReproError
    from repro.service import ArtifactRegistry, FloorService

    if args.workers < 1:
        return _fail("--workers must be at least 1")
    if not args.artifact and args.state_dir is None:
        return _fail("pass at least one --artifact, or --state-dir to "
                     "serve journaled registrations")
    if args.workers > 1:
        return _serve_cluster(args)
    registry = ArtifactRegistry(max_resident=args.max_resident)
    try:
        service = FloorService(
            registry, retest_policy=args.policy,
            max_batch_size=args.max_batch,
            max_latency=args.max_latency_ms / 1000.0,
            max_pending=args.max_pending,
            admin_token=args.admin_token,
            state_dir=args.state_dir)
    except ReproError as exc:
        # e.g. a corrupt journal in --state-dir.
        return _fail(exc)
    for name, version, path in args.artifact or []:
        if (name, version) in registry:
            # The journal already saw this key (and every later
            # hot-swap of it); the restart command line must not
            # reorder that history.
            print("skipping {}@{} (replayed from --state-dir)".format(
                name, version), file=sys.stderr)
            continue
        try:
            service.register_artifact(name, version, path)
        except (ReproError, OSError) as exc:
            return _fail(exc)
        print("registered {}@{} from {}".format(name, version, path),
              file=sys.stderr)

    async def _serve():
        await service.start(args.host, args.port)
        print("serving {} artifact(s) on http://{}:{}".format(
            len(registry), args.host, service.port), file=sys.stderr,
            flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as exc:
        return _fail("cannot bind {}:{}: {}".format(
            args.host, args.port, exc))
    return 0


def cmd_loadgen(args):
    """Replay deterministic traffic against a service; verify decisions."""
    import asyncio

    from repro.errors import ArtifactError, ReproError, ServiceError
    from repro.floor import TestProgramArtifact
    from repro.service import (TrafficPlan, offline_reference, run_load,
                               split_url, wait_healthy)

    try:
        host, port = split_url(args.url)
    except ServiceError as exc:
        return _fail(exc)
    try:
        artifact = TestProgramArtifact.load(args.artifact)
    except ArtifactError as exc:
        return _fail(exc)
    except OSError as exc:
        return _fail("cannot read artifact {}: {}".format(
            args.artifact, exc))
    plan = TrafficPlan(
        device=args.name or args.device,
        dut=_bench(args.device),
        n_devices=args.devices,
        seed=args.seed,
        version=args.version,
        reference=offline_reference(artifact, retest_policy=args.policy))

    async def _run():
        await wait_healthy(host, port, timeout=args.timeout)
        return await run_load(host, port, [plan],
                              n_clients=args.clients,
                              max_chunk=args.max_chunk, seed=args.seed)

    print("Replaying {} simulated {} devices against http://{}:{}..."
          .format(args.devices, args.device, host, port), file=sys.stderr)
    try:
        report = asyncio.run(_run())
    except (ReproError, OSError) as exc:
        return _fail(exc)
    print(report.summary())
    if not report.equivalent:
        return _fail("served decisions differ from the offline floor")
    return 0


def cmd_telemetry_report(args):
    """Summarize a JSONL telemetry trace (per-stage time and counters)."""
    from repro.telemetry import render_report

    try:
        rows = render_report(args.path)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early -- not an
        # error with the trace.
        return 0
    except OSError as exc:
        return _fail("cannot read trace {}: {}".format(args.path, exc))
    except ValueError as exc:
        return _fail("malformed trace {}: {}".format(args.path, exc))
    if not rows:
        print("no spans in {}".format(args.path), file=sys.stderr)
    return 0


def _lookup_resolution(value):
    """argparse type for --lookup-resolution: an int or 'auto'.

    Validating at parse time fails fast -- the deploy command only
    builds the table after minutes of simulation and training.
    """
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "must be an integer or 'auto', not {!r}".format(value))


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, **defaults):
        p = sub.add_parser(name, help=fn.__doc__)
        p.add_argument("--train", type=int,
                       default=defaults.get("train", 600))
        p.add_argument("--test", type=int,
                       default=defaults.get("test", 400))
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--tolerance", type=float, default=0.01)
        p.add_argument("--guard", type=float,
                       default=defaults.get("guard", 0.05))
        p.set_defaults(func=fn)
        return p

    def add_jobs(p):
        # Only the greedy-loop commands consume workers; advertising
        # --jobs on the table printers would be a silent no-op.
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the runtime engine "
                            "(-1 = all CPUs; default serial)")
        return p

    def add_sim_jobs(p):
        # Only the commands that simulate Monte-Carlo populations;
        # table1/table2 measure a single nominal instance.
        p.add_argument("--sim-jobs", type=int, default=1,
                       help="worker processes for Monte-Carlo "
                            "generation (-1 = all CPUs; default "
                            "serial; identical datasets at any count)")
        p.add_argument("--sim-engine", choices=("scalar", "batched"),
                       default="scalar",
                       help="device-simulation engine: 'batched' "
                            "stacks whole instance populations into "
                            "single LAPACK solves (identical datasets "
                            "either way; composes with --sim-jobs)")
        p.add_argument("--dataset", default=None, metavar="DIR",
                       help="source populations from manifested shard "
                            "stores cached under DIR (rows already on "
                            "disk are memory-mapped, only the "
                            "shortfall is simulated; results are "
                            "bit-identical to direct simulation)")
        return p

    def add_telemetry(p):
        # Long-running commands only; results are bit-identical with
        # telemetry on or off (the observer never feeds back).
        p.add_argument("--telemetry", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="enable tracing/metrics; write the JSONL "
                            "trace to PATH ('-' or no value = stderr); "
                            "summarize with `repro telemetry-report`")
        return p

    add("table1", cmd_table1)
    add("table2", cmd_table2)
    add_telemetry(add_jobs(add_sim_jobs(add("fig5", cmd_fig5))))
    add_telemetry(add_sim_jobs(add("table3", cmd_table3, guard=0.03,
                                   train=1000, test=1000)))
    add_telemetry(add_sim_jobs(add("cost", cmd_cost, guard=0.03,
                                   train=1000, test=1000)))
    batch = add_telemetry(
        add_sim_jobs(add("batch", cmd_batch, train=300, test=200)))
    add_jobs(batch)
    batch.add_argument("--lots", type=int, default=4,
                       help="number of independent Monte-Carlo lots")
    batch.add_argument("--device", choices=("opamp", "mems"),
                       default="opamp")

    deploy = add_telemetry(add_sim_jobs(add("deploy", cmd_deploy)))
    add_jobs(deploy)
    deploy.add_argument("--device", choices=("opamp", "mems"),
                        default="opamp")
    deploy.add_argument("--out", default=None,
                        help="artifact path (default <device>.rtp)")
    deploy.add_argument("--lookup-resolution", default=None,
                        type=_lookup_resolution,
                        help="attach a grid lookup table: an integer "
                             "cells-per-dimension, or 'auto' (default: "
                             "no table, live-model floor)")
    deploy.add_argument("--profile", default=None, metavar="PATH",
                        help="attach a tolerance-profile JSON file "
                             "(multi-bin disposition; trains a "
                             "one-vs-rest grade bank when the profile "
                             "has two or more grade bins)")

    # `floor` serves an existing artifact: no train/test/tolerance.
    floor = sub.add_parser("floor", help=cmd_floor.__doc__)
    floor.add_argument("--artifact", required=True,
                       help="path saved by `repro deploy`")
    floor.add_argument("--devices", type=int, default=2000,
                       help="simulated devices per lot")
    floor.add_argument("--lots", type=int, default=1,
                       help="lots in the schedule (seeds are "
                            "--seed, --seed+1, ...)")
    floor.add_argument("--seed", type=int, default=1)
    floor.add_argument("--policy", default="full_retest",
                       choices=("full_retest", "accept", "reject"),
                       help="guard-band retest policy")
    floor.add_argument("--batch-size", type=int, default=8192,
                       help="devices per vectorized disposition batch "
                            "(never changes any decision)")
    floor.add_argument("--device", choices=("opamp", "mems"),
                       default=None,
                       help="override the artifact's provenance device")
    add_sim_jobs(floor)
    add_telemetry(floor)
    floor.set_defaults(func=cmd_floor)

    # `serve` hosts existing artifacts; `loadgen` drives a running
    # service -- neither trains, so neither takes train/test options.
    serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    serve.add_argument("--artifact", action="append", default=None,
                       type=_artifact_spec, metavar="NAME[=VERSION]=PATH",
                       help="artifact to register (repeatable); e.g. "
                            "opamp=opamp.rtp or opamp=2=opamp-v2.rtp; "
                            "optional when --state-dir replays a journal")
    serve.add_argument("--state-dir", default=None,
                       help="directory for the control-plane write-ahead "
                            "journal: register/hot-swap/retire are "
                            "fsync'd before they are acknowledged and "
                            "replayed on restart, so a killed service "
                            "restarts with the exact pre-crash "
                            "registration state")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731)
    serve.add_argument("--policy", default="full_retest",
                       choices=("full_retest", "accept", "reject"),
                       help="guard-band retest policy for every floor")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="rows per coalesced floor batch (size flush)")
    serve.add_argument("--max-latency-ms", type=float, default=5.0,
                       help="max milliseconds a queued request waits "
                            "before a latency flush")
    serve.add_argument("--max-pending", type=int, default=65536,
                       help="queued-row bound; beyond it requests are "
                            "rejected with 429 backpressure")
    serve.add_argument("--admin-token", default=None,
                       help="shared secret (X-Admin-Token header) required "
                            "for remote POST /artifacts[/retire]; without "
                            "it the control plane is loopback-only")
    serve.add_argument("--max-resident", type=int, default=8,
                       help="LRU bound on in-memory artifacts")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes behind the device-hash "
                            "sharding router (default 1 = single "
                            "in-process service; N>=2 spawns N "
                            "FloorService workers, fans the control "
                            "plane out atomically, and respawns "
                            "crashed workers; decisions are "
                            "bit-identical at any worker count)")
    serve.add_argument("--health-interval", type=float, default=0.5,
                       help="seconds between cluster worker health "
                            "probes (--workers >= 2 only)")
    add_telemetry(serve)
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser("loadgen", help=cmd_loadgen.__doc__)
    loadgen.add_argument("--url", required=True,
                         help="service base URL, e.g. http://127.0.0.1:8731")
    loadgen.add_argument("--artifact", required=True,
                         help="artifact path for the offline reference "
                              "floor the served decisions are checked "
                              "against")
    loadgen.add_argument("--device", choices=("opamp", "mems"),
                         default="opamp",
                         help="device bench that simulates the traffic")
    loadgen.add_argument("--name", default=None,
                         help="registry device key to address (default: "
                              "--device)")
    loadgen.add_argument("--version", default=None,
                         help="pin an artifact version (default: newest)")
    loadgen.add_argument("--devices", type=int, default=200,
                         help="simulated devices to replay")
    loadgen.add_argument("--seed", type=int, default=1,
                         help="population + request-schedule seed")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent keep-alive connections")
    loadgen.add_argument("--max-chunk", type=int, default=16,
                         help="largest devices-per-request chunk")
    loadgen.add_argument("--policy", default="full_retest",
                         choices=("full_retest", "accept", "reject"),
                         help="retest policy of the offline reference "
                              "(must match the server's)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="seconds to wait for the service to become "
                              "healthy")
    add_telemetry(loadgen)
    loadgen.set_defaults(func=cmd_loadgen)

    # `dataset` manages on-disk shard stores directly.
    dataset = sub.add_parser(
        "dataset",
        help="generate, grow, inspect and verify shard-store datasets")
    dsub = dataset.add_subparsers(dest="dataset_command", required=True)

    gen = dsub.add_parser("generate", help=cmd_dataset_generate.__doc__)
    gen.add_argument("root", help="store directory to create")
    gen.add_argument("--device", choices=("opamp", "mems"),
                     default="opamp")
    gen.add_argument("--rows", type=int, required=True,
                     help="population size to simulate")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--shard-rows", type=int, default=None,
                     help="rows per shard (default {}; fixed for the "
                          "store's lifetime)".format(
                              _default_shard_rows()))
    gen.add_argument("--sim-jobs", type=int, default=1,
                     help="worker processes (-1 = all CPUs; identical "
                          "shards at any count)")
    gen.add_argument("--sim-engine", choices=("scalar", "batched"),
                     default="scalar")
    add_telemetry(gen)
    gen.set_defaults(func=cmd_dataset_generate)

    ext = dsub.add_parser("extend", help=cmd_dataset_extend.__doc__)
    ext.add_argument("root", help="existing store directory")
    ext.add_argument("--rows", type=int, required=True,
                     help="target population size (prefix rows are "
                          "never re-simulated)")
    ext.add_argument("--device", choices=("opamp", "mems"), default=None,
                     help="override the manifest's device label")
    ext.add_argument("--sim-jobs", type=int, default=1,
                     help="worker processes (-1 = all CPUs)")
    add_telemetry(ext)
    ext.set_defaults(func=cmd_dataset_extend)

    info = dsub.add_parser("info", help=cmd_dataset_info.__doc__)
    info.add_argument("root", help="store directory")
    info.set_defaults(func=cmd_dataset_info)

    verify = dsub.add_parser("verify", help=cmd_dataset_verify.__doc__)
    verify.add_argument("root", help="store directory")
    verify.add_argument("--repair", action="store_true",
                        help="regenerate corrupted shards from the "
                             "per-instance seed tree and re-verify them "
                             "hash-identical to the manifest")
    verify.add_argument("--device", choices=("opamp", "mems"),
                        default=None,
                        help="override the manifest's device label "
                             "(--repair only)")
    verify.add_argument("--sim-jobs", type=int, default=1,
                        help="worker processes for --repair "
                             "(-1 = all CPUs)")
    verify.set_defaults(func=cmd_dataset_verify)

    report = sub.add_parser("telemetry-report",
                            help=cmd_telemetry_report.__doc__)
    report.add_argument("path", help="JSONL trace written by --telemetry")
    report.set_defaults(func=cmd_telemetry_report)
    return parser


def main(argv=None):
    """CLI entry point."""
    from repro.errors import DatasetError

    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "telemetry", None)
    if trace_path is not None:
        # Activate the process-wide registry before dispatch so every
        # instrumented layer the command touches records into it; the
        # final snapshot is flushed even when the command fails.
        from repro.telemetry import configure, disable

        configure(path=trace_path)
    try:
        return args.func(args)
    except DatasetError as exc:
        # e.g. a corrupt shard store behind --dataset; same one-line
        # contract as every other operator error.
        return _fail(exc)
    finally:
        if trace_path is not None:
            disable()


if __name__ == "__main__":
    sys.exit(main())
