"""First-principles mechanics of the folded-flexure accelerometer.

Converts an :class:`~repro.mems.geometry.AccelerometerGeometry` plus a
temperature into the lumped parameters of the equivalent second-order
system: effective mass ``m``, spring constant ``k(T)``, damping
coefficient ``c(T)`` and the capacitive sense gain.

Temperature physics
-------------------

* **Stress stiffening** -- die expansion moves the anchors relative to
  the proof-mass center (the paper's stated mechanism).  The resulting
  axial strain in the suspension beams adds a geometric-stiffness term:
  for a clamped-guided beam under axial force ``N``,
  ``k = k_bending + 1.2 * N / L``.  Hot dies (expansion) tension the
  beams (stiffen); cold dies compress them (soften).
* **Young's modulus** -- polysilicon softens slightly with temperature,
  ``E(T) = E0 * (1 - TCE * (T - T0))``.
* **Gas damping** -- air viscosity follows a Sutherland-like power law
  ``mu(T) = mu0 * (T/T0)^0.7`` (absolute temperatures), so hot devices
  are more heavily damped.
"""

import math

from repro.errors import CircuitError

#: Density of structural polysilicon (kg/m^3).
DENSITY = 2330.0
#: Young's modulus of polysilicon at room temperature (Pa).
E_ROOM = 160e9
#: Temperature coefficient of the Young's modulus (1/K).
TCE = 60e-6
#: Air viscosity at room temperature (Pa*s).
MU_ROOM = 1.82e-5
#: Effective squeeze-film coefficient of the comb fingers.  Captures the
#: multiple gas-film surfaces per finger cell and end effects; calibrated
#: so the nominal device has Q ~ 2 at room temperature, matching the
#: paper's Table 2.
SQUEEZE_COEFF = 82.0
#: Fraction of the thermal axial strain that survives the folded
#: flexure's stress-relief action.  A folded suspension relieves almost
#: all axial stress (that is its purpose); the residual few percent is
#: what couples die expansion into the spring constant.
STRESS_RELIEF = 0.03
#: Couette-damping air-gap under the proof mass (m).
Z_GAP = 2.0e-6
#: Reference (room) temperature (deg C).
T_ROOM = 27.0
#: Sense bias voltage of the capacitive readout (V).
V_SENSE = 1.5
#: Readout amplifier gain from relative capacitance change to volts.
READOUT_GAIN = 10.0
#: Vacuum permittivity (F/m).
EPS0 = 8.854e-12
#: Standard gravity (m/s^2).
G0 = 9.80665


def youngs_modulus(temperature_c):
    """Temperature-dependent Young's modulus of polysilicon (Pa)."""
    return E_ROOM * (1.0 - TCE * (temperature_c - T_ROOM))


def viscosity(temperature_c):
    """Air viscosity at the given temperature (Pa*s)."""
    t_abs = temperature_c + 273.15
    t0_abs = T_ROOM + 273.15
    if t_abs <= 0:
        raise CircuitError("temperature below absolute zero")
    return MU_ROOM * (t_abs / t0_abs) ** 0.7


def effective_mass(geometry):
    """Proof mass plus finger mass plus 13/35 of the beam mass (kg)."""
    plate = (geometry.mass_length * geometry.mass_width
             * geometry.thickness * DENSITY)
    fingers = (geometry.n_fingers * geometry.finger_length
               * 3e-6 * geometry.thickness * DENSITY)
    beams = 4.0 * (geometry.beam_length * geometry.beam_width
                   * geometry.thickness * DENSITY)
    return plate + fingers + (13.0 / 35.0) * beams


def anchor_displacement(geometry, temperature_c):
    """Anchor motion toward (+) / away (-) from the die center (m).

    Positive values (hot die) stretch the suspension; negative values
    (cold die) compress it -- the paper's shrink/expand mechanism.
    """
    return (geometry.cte_mismatch * (temperature_c - T_ROOM)
            * geometry.anchor_span / 2.0)


def spring_constant(geometry, temperature_c=T_ROOM):
    """Suspension stiffness in the sense direction (N/m).

    Four clamped-guided flexure legs in parallel:
    ``k_bend = 4 * E(T) * t * (w / L)^3``, corrected for angular
    misalignment (a misaligned beam is stiffer in the intended
    compliant direction because axial stretch engages) and for the
    thermal axial-stress geometric term.
    """
    E = youngs_modulus(temperature_c)
    w = geometry.beam_width
    L = geometry.beam_length
    t = geometry.thickness
    k_bend = 4.0 * E * t * (w / L) ** 3

    # Angular misalignment: mixing in the (much stiffer) axial mode.
    theta = math.radians(geometry.spring_angle_deg)
    axial_ratio = (L / w) ** 2  # k_axial / k_bend per leg, to first order
    k_bend *= (math.cos(theta) ** 2
               + math.sin(theta) ** 2 * min(axial_ratio, 1e4) * 1e-3)

    # Thermal axial stress from anchor motion (paper's mechanism).
    delta = anchor_displacement(geometry, temperature_c)
    strain = STRESS_RELIEF * delta / L          # folded flexure relieves most
    axial_force = E * w * t * strain            # per leg
    k_geometric = 4.0 * 1.2 * axial_force / L   # clamped-guided factor
    k_total = k_bend + k_geometric
    if k_total <= 0:
        raise CircuitError(
            "thermal buckling: non-positive spring constant at {} C".format(
                temperature_c))
    return k_total


def damping_coefficient(geometry, temperature_c=T_ROOM):
    """Viscous damping from Couette film + finger squeeze film (N*s/m)."""
    mu = viscosity(temperature_c)
    plate_area = geometry.mass_length * geometry.mass_width
    couette = mu * plate_area / Z_GAP
    # Squeeze-film contribution of the sense fingers (effective model:
    # flow between finger sidewalls, cubic in thickness-to-gap ratio).
    squeeze = (geometry.n_fingers * SQUEEZE_COEFF * mu
               * geometry.finger_length
               * (geometry.thickness / geometry.finger_gap) ** 3)
    return couette + squeeze


def resonant_frequency(geometry, temperature_c=T_ROOM):
    """Undamped natural frequency f0 = sqrt(k/m) / 2*pi (Hz)."""
    k = spring_constant(geometry, temperature_c)
    m = effective_mass(geometry)
    return math.sqrt(k / m) / (2.0 * math.pi)


def quality_factor_analytic(geometry, temperature_c=T_ROOM):
    """Analytic Q = sqrt(k*m) / c (used for cross-checks in tests)."""
    k = spring_constant(geometry, temperature_c)
    m = effective_mass(geometry)
    c = damping_coefficient(geometry, temperature_c)
    return math.sqrt(k * m) / c


def sense_capacitance(geometry):
    """Total sense capacitance of the comb fingers (F)."""
    area = geometry.finger_length * geometry.thickness
    return 2.0 * geometry.n_fingers * EPS0 * area / geometry.finger_gap


def sense_gain(geometry):
    """Readout gain from proof-mass displacement to output volts (V/m).

    Differential gap-closing sense: ``dC/C = dx / gap`` per side, read
    out with bias ``V_SENSE`` and amplifier gain ``READOUT_GAIN``.
    """
    return READOUT_GAIN * V_SENSE / geometry.finger_gap
