"""Electrical-equivalent simulation of the accelerometer.

The mechanical system ``m x'' + c x' + k x = F`` maps onto a series
RLC branch under the force-voltage analogy::

    force F       ->  source voltage V
    velocity x'   ->  branch current I
    mass m        ->  inductance L
    damping c     ->  resistance R
    compliance    ->  capacitance C = 1/k

so the displacement phasor is ``X(w) = I(w) / (j*w) =
V / (k - w^2 m + j*w*c)``.  The netlist is built with
:class:`repro.circuit.netlist.Circuit` and swept with
:func:`repro.circuit.ac.solve_ac`, i.e. the accelerometer runs through
exactly the same simulator substrate as the op-amp -- mirroring the
paper, where both devices go through Spectre.
"""

import numpy as np

from repro.circuit.ac import solve_ac
from repro.circuit.batch import CircuitBatch
from repro.circuit.dc import solve_dc
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.mems import mechanics


def build_equivalent_circuit(geometry, temperature_c=mechanics.T_ROOM,
                             force_amplitude=1.0):
    """Series-RLC equivalent netlist of one accelerometer instance.

    Returns ``(circuit, lumped)`` where ``lumped`` is a dict with the
    physical ``m``, ``c``, ``k`` used for the mapping (handy for tests
    and documentation).
    """
    m = mechanics.effective_mass(geometry)
    c = mechanics.damping_coefficient(geometry, temperature_c)
    k = mechanics.spring_constant(geometry, temperature_c)

    ckt = Circuit("accel-equivalent@{:g}C".format(temperature_c))
    ckt.voltage_source("Fdrive", "force", "0", dc=0.0, ac=force_amplitude)
    ckt.inductor("Lmass", "force", "vel", m)
    ckt.resistor("Rdamp", "vel", "spr", c)
    ckt.capacitor("Ckinv", "spr", "0", 1.0 / k)
    return ckt, {"m": m, "c": c, "k": k}


def frequency_response(geometry, freqs, temperature_c=mechanics.T_ROOM):
    """Displacement magnitude |x(f)| per unit force, via AC analysis.

    Parameters
    ----------
    geometry:
        :class:`~repro.mems.geometry.AccelerometerGeometry`.
    freqs:
        Frequencies to sweep (Hz).
    temperature_c:
        Die temperature in degrees Celsius.

    Returns
    -------
    numpy.ndarray
        ``|x|`` in meters per newton at each frequency.
    """
    ckt, _ = build_equivalent_circuit(geometry, temperature_c)
    op = solve_dc(ckt)
    ac = solve_ac(ckt, freqs, op)
    velocity = ac.branch_current("Fdrive")
    omega = 2.0 * np.pi * np.asarray(list(freqs), dtype=float)
    # The source current flows from + through the source, i.e. opposite
    # to the branch current delivered into the RLC; magnitude is what
    # the displacement extraction needs.
    displacement = np.abs(velocity) / omega
    return displacement


def frequency_response_batch(geometries, freqs,
                             temperature_c=mechanics.T_ROOM):
    """Displacement responses of many instances through one solve stack.

    The batched counterpart of :func:`frequency_response`: every
    instance's series-RLC equivalent is stacked into one
    :class:`~repro.circuit.batch.CircuitBatch` and the whole
    instance x frequency sweep goes through stacked LAPACK solves --
    values bit-identical to the scalar path per instance.

    Returns
    -------
    (numpy.ndarray, list)
        ``(B, n_freqs)`` displacement magnitudes (NaN rows for failed
        instances) and the per-instance error list (``None`` on
        success).  A failure -- e.g. thermal buckling making the
        equivalent circuit unbuildable -- stays confined to its
        instance.
    """
    n = len(geometries)
    errors = [None] * n
    keys, circuits = [], []
    for k, geometry in enumerate(geometries):
        try:
            circuits.append(
                build_equivalent_circuit(geometry, temperature_c)[0])
        except ReproError as exc:
            errors[k] = exc
        else:
            keys.append(k)

    omega = 2.0 * np.pi * np.asarray(list(freqs), dtype=float)
    displacement = np.full((n, omega.size), np.nan)
    if keys:
        batch = CircuitBatch(circuits)
        op = batch.solve_dc()
        live = [pos for pos in range(len(keys))
                if op.errors[pos] is None]
        ac = batch.solve_ac(freqs, op.x, active=live)
        velocity = ac.branch_current("Fdrive")
        for pos, k in enumerate(keys):
            error = op.errors[pos] or ac.errors[pos]
            if error is not None:
                errors[k] = error
            elif pos in live:
                displacement[k] = np.abs(velocity[pos]) / omega
    return displacement, errors
