"""MEMS accelerometer DUT (paper Section 5.2).

A folded-flexure comb-sense accelerometer in the style of the CMU
CMOS-MEMS devices the paper references.  The mechanical behaviour is
derived from first-principles beam/plate formulas
(:mod:`repro.mems.mechanics`), mapped onto an electrical-equivalent
series RLC network and simulated with the :mod:`repro.circuit` AC
engine -- the same "simulate and measure" path Spectre plus the MEMS
libraries provided in the paper.

Temperature testing: the paper measures the same four specifications at
hot (80 C), room (27 C) and cold (-40 C).  "The effect of temperature
is modeled as chip shrinkage or expansion, meaning the anchors of the
accelerometer move towards or away from the center" -- implemented here
as thermal-mismatch axial stress in the suspension beams
(stress stiffening/softening), plus the temperature dependence of the
gas viscosity (damping) and of the Young's modulus.
"""

from repro.mems.geometry import AccelerometerGeometry
from repro.mems.mechanics import (
    damping_coefficient,
    effective_mass,
    resonant_frequency,
    sense_gain,
    spring_constant,
)
from repro.mems.accelerometer import build_equivalent_circuit, frequency_response
from repro.mems.specs import (
    MEMS_SPECIFICATIONS,
    TEMPERATURES,
    AccelerometerBench,
    measure_accelerometer,
    test_name,
    tests_at_temperature,
)

__all__ = [
    "AccelerometerGeometry",
    "spring_constant",
    "effective_mass",
    "damping_coefficient",
    "resonant_frequency",
    "sense_gain",
    "build_equivalent_circuit",
    "frequency_response",
    "AccelerometerBench",
    "MEMS_SPECIFICATIONS",
    "TEMPERATURES",
    "measure_accelerometer",
    "test_name",
    "tests_at_temperature",
]
