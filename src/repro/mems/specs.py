"""MEMS accelerometer specifications at three temperatures (Table 2).

Four specifications are measured at each of the cold (-40 C), room
(27 C) and hot (80 C) insertions, giving twelve specification tests:

* ``scale_factor`` -- readout output per g of acceleration (mV/g);
* ``peak_freq``    -- frequency of the displacement-response maximum (kHz);
* ``quality_factor`` -- resonance Q from the half-power bandwidth;
* ``bw_3db``       -- -3 dB bandwidth of the displacement response (kHz).

Test names follow ``"<spec>@<temp>C"`` (e.g. ``"peak_freq@-40C"``); use
:func:`tests_at_temperature` to select a temperature block, which is
what the Table 3 experiment eliminates wholesale.
"""

import numpy as np
from scipy.optimize import least_squares

from repro.circuit import analysis as ana
from repro.core.specs import Specification, SpecificationSet
from repro.errors import AnalysisError
from repro.mems import mechanics
from repro.mems.accelerometer import frequency_response
from repro.mems.geometry import AccelerometerGeometry

#: The three insertion temperatures (deg C): cold, room, hot.
TEMPERATURES = (-40.0, 27.0, 80.0)
#: Sweep grid for the displacement response (Hz).
SWEEP_FREQUENCIES = np.logspace(np.log10(200.0), np.log10(40e3), 121)

#: Base (per-temperature) specifications: name, unit, nominal, low, high.
#: Nominals from the unperturbed geometry at room temperature; ranges
#: calibrated for ~77 % yield over the Monte-Carlo population
#: (see EXPERIMENTS.md).
_BASE_SPECS = (
    ("scale_factor", "mV/g", 88.7, 59.5, 131.0,
     "capacitive readout output per g"),
    ("peak_freq", "kHz", 4.92, 3.92, 6.23,
     "displacement-response peak frequency"),
    ("quality_factor", "-", 1.99, 1.38, 3.04,
     "resonance quality factor"),
    ("bw_3db", "kHz", 7.81, 6.31, 9.78,
     "displacement-response -3 dB bandwidth"),
)


def test_name(spec_name, temperature_c):
    """Canonical test name for a specification at a temperature."""
    return "{}@{:g}C".format(spec_name, temperature_c)


def tests_at_temperature(temperature_c):
    """All four test names of one temperature insertion."""
    return tuple(test_name(base[0], temperature_c) for base in _BASE_SPECS)


def _build_specification_set():
    specs = []
    for temp in TEMPERATURES:
        for name, unit, nominal, low, high, description in _BASE_SPECS:
            specs.append(Specification(
                test_name(name, temp), unit, nominal, low, high,
                "{} at {:g} C".format(description, temp)))
    return SpecificationSet(specs)


#: Table 2 analog: twelve specification tests (4 specs x 3 temperatures).
MEMS_SPECIFICATIONS = _build_specification_set()


def fit_second_order(freqs, response):
    """Least-squares fit of a second-order magnitude response.

    Fits ``|x(f)| = A / sqrt((1 - (f/f0)^2)^2 + (f / (f0 Q))^2)`` in
    log-magnitude space (parameters optimized as logarithms so they
    stay positive).  This is the standard way a characterization
    engineer extracts resonance parameters from a measured transfer
    curve, and it stays well defined for overdamped devices that have
    no interior resonant peak.

    Returns ``(A, f0, Q)``.
    """
    freqs = np.asarray(list(freqs), dtype=float)
    response = np.asarray(response, dtype=float)
    if freqs.shape != response.shape or freqs.size < 5:
        raise AnalysisError("fit needs matching sweeps of >= 5 points")
    if np.any(response <= 0):
        raise AnalysisError("response must be strictly positive")
    log_resp = np.log(response)

    def residual(p):
        log_a, log_f0, log_q = p
        f0 = np.exp(log_f0)
        q = np.exp(log_q)
        u = (freqs / f0) ** 2
        mag2 = (1.0 - u) ** 2 + u / q ** 2
        return log_a - 0.5 * np.log(mag2) - log_resp

    k_peak = int(np.argmax(response))
    f0_guess = freqs[k_peak] if 0 < k_peak < freqs.size - 1 else \
        float(np.sqrt(freqs[0] * freqs[-1]))
    p0 = np.log([float(response[0]), f0_guess, 1.5])
    fit = least_squares(residual, p0, method="lm", max_nfev=200)
    a, f0, q = np.exp(fit.x)
    return float(a), float(f0), float(q)


def _specs_from_response(geometry, response):
    """The four per-temperature specs from a displacement response.

    Shared by the scalar and batched measurement paths so both extract
    identically from identical sweeps.
    """
    m = mechanics.effective_mass(geometry)

    # Resonance parameters by curve fitting the simulated response.
    x_static, f0, q = fit_second_order(SWEEP_FREQUENCIES, response)

    # Scale factor: displacement per g times the capacitive sense gain.
    displacement_per_g = x_static * m * mechanics.G0
    scale_factor_mv = (displacement_per_g * mechanics.sense_gain(geometry)
                       * 1e3)

    # Peak of the displacement response; for overdamped fits (no
    # resonant peak) the convention is to report f0 itself.
    if q > 1.0 / np.sqrt(2.0):
        peak = f0 * np.sqrt(1.0 - 1.0 / (2.0 * q * q))
    else:
        peak = f0
    bw = ana.bandwidth_3db(SWEEP_FREQUENCIES, response)
    return {
        "scale_factor": scale_factor_mv,
        "peak_freq": peak / 1e3,
        "quality_factor": q,
        "bw_3db": bw / 1e3,
    }


def _named_specs_from_response(geometry, response, temperature_c):
    """Like :func:`_specs_from_response`, keyed by full test names."""
    return {test_name(base, temperature_c): value
            for base, value in
            _specs_from_response(geometry, response).items()}


def measure_at_temperature(geometry, temperature_c):
    """Measure the four specifications of one instance at one temperature.

    Returns a dict keyed by *base* specification name.
    """
    response = frequency_response(geometry, SWEEP_FREQUENCIES,
                                  temperature_c)
    return _specs_from_response(geometry, response)


def measure_accelerometer(geometry=None):
    """All twelve specification tests of one accelerometer instance.

    Returns a dict keyed by the full test names of
    :data:`MEMS_SPECIFICATIONS`.
    """
    geometry = (geometry or AccelerometerGeometry()).validate()
    values = {}
    for temp in TEMPERATURES:
        at_t = measure_at_temperature(geometry, temp)
        for base_name, value in at_t.items():
            values[test_name(base_name, temp)] = value
    return values


class AccelerometerBench:
    """The accelerometer device-under-test for Monte-Carlo generation.

    Implements the DUT protocol of
    :func:`repro.process.montecarlo.generate_dataset`.

    Parameters
    ----------
    nominal:
        Base geometry; defaults to :class:`AccelerometerGeometry()`.
    relative_spread:
        Uniform half-width for lengths/widths.
    angle_sigma_deg:
        Gaussian sigma of the spring angular misalignment (degrees).
    specifications:
        Override the acceptability ranges (defaults to the calibrated
        :data:`MEMS_SPECIFICATIONS`).
    """

    name = "mems-accelerometer"

    def __init__(self, nominal=None, relative_spread=0.08,
                 angle_sigma_deg=1.0, specifications=None):
        self.nominal = (nominal or AccelerometerGeometry()).validate()
        self.relative_spread = float(relative_spread)
        self.angle_sigma_deg = float(angle_sigma_deg)
        self.specifications = specifications or MEMS_SPECIFICATIONS

    def sample_parameters(self, rng):
        """Draw one process-perturbed geometry."""
        return self.nominal.perturbed(
            rng, relative_spread=self.relative_spread,
            angle_sigma_deg=self.angle_sigma_deg)

    def measure(self, geometry):
        """Measure the twelve-test specification vector."""
        measured = measure_accelerometer(geometry)
        return np.array([measured[name]
                         for name in self.specifications.names])

    def measure_batch(self, geometries):
        """Measure many instances through the batched MNA kernel.

        All instances' displacement sweeps at each insertion
        temperature run as one stacked solve
        (:func:`repro.mems.accelerometer.frequency_response_batch`);
        the per-instance curve fits and spec extraction reuse the
        scalar code, so every row is bit-identical to :meth:`measure`.
        Returns one value row (or the instance's
        :class:`~repro.errors.ReproError`) per input.
        """
        from repro.mems.accelerometer import frequency_response_batch
        from repro.process.montecarlo import BatchPopulation

        pop = BatchPopulation(len(geometries))
        pop.build(lambda geometry: geometry.validate(), geometries)

        for temp in TEMPERATURES:
            live = pop.live()
            if not live:
                break
            response, batch_errors = frequency_response_batch(
                [geometries[k] for k in live], SWEEP_FREQUENCIES, temp)
            alive = set(pop.absorb(live, batch_errors))
            for pos, k in enumerate(live):
                if k in alive:
                    pop.extract(k, _named_specs_from_response,
                                geometries[k], response[pos], temp)
        return pop.rows(self.specifications.names)

    def generate_dataset(self, n_instances, seed, on_error="resample",
                         n_jobs=None, seed_mode="per-instance",
                         max_failures=None, return_report=False,
                         engine="scalar"):
        """Convenience wrapper around the Monte-Carlo generator.

        ``n_jobs`` fans the instance simulations out across worker
        processes and ``engine="batched"`` routes whole slot batches
        through the vectorized MNA kernel (bit-identical dataset at any
        worker count and either engine); see
        :func:`repro.process.montecarlo.generate_dataset`.
        """
        from repro.process.montecarlo import generate_dataset

        return generate_dataset(self, n_instances, seed=seed,
                                on_error=on_error, n_jobs=n_jobs,
                                seed_mode=seed_mode,
                                max_failures=max_failures,
                                return_report=return_report,
                                engine=engine)
