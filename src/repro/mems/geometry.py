"""Accelerometer geometry: the Monte-Carlo-varied parameter set.

The paper generates accelerometer instances "by adding variations to
the accelerometer component lengths, widths and relative angles".  The
:class:`AccelerometerGeometry` dataclass collects those quantities for
a folded-flexure, comb-sense proof mass:

* four folded-flexure suspension springs (``beam_length``,
  ``beam_width``) in structural polysilicon of ``thickness``;
* a rectangular proof mass (``mass_length``, ``mass_width``) with
  ``n_fingers`` sense fingers of ``finger_length`` at ``finger_gap``;
* ``spring_angle_deg`` -- angular misalignment of the suspension beams
  from the ideal compliant direction (degrees; nominal 0);
* ``anchor_span`` -- distance between opposing anchors, which converts
  thermal die expansion into axial beam stress;
* ``cte_mismatch`` -- effective thermal-expansion mismatch between the
  structural layer and the substrate (1/K).  This parameter mostly
  influences behaviour *at temperature*, which is what makes the
  hot/cold tests non-trivially predictable from room-temperature data.
"""

from dataclasses import dataclass, fields, replace

from repro.errors import CircuitError


@dataclass
class AccelerometerGeometry:
    """Geometric/material description of one accelerometer instance."""

    beam_length: float = 210e-6       # suspension beam length (m)
    beam_width: float = 2.0e-6        # suspension beam width (m)
    thickness: float = 2.0e-6         # structural layer thickness (m)
    mass_length: float = 450e-6       # proof mass side (m)
    mass_width: float = 450e-6        # proof mass side (m)
    n_fingers: float = 42.0           # sense fingers (continuous for MC)
    finger_length: float = 100e-6     # sense finger overlap (m)
    finger_gap: float = 1.5e-6        # sense gap (m)
    spring_angle_deg: float = 0.0     # beam angular misalignment (deg)
    anchor_span: float = 570e-6       # anchor-to-anchor distance (m)
    cte_mismatch: float = 1.4e-6      # CTE mismatch (1/K)

    #: Multiplicatively varied fields ("lengths and widths").  The CTE
    #: mismatch is a material property, not a geometric one, so it is
    #: held at nominal, matching the paper's process model of varying
    #: only component lengths, widths and relative angles.
    VARIED_RELATIVE = (
        "beam_length", "beam_width", "thickness", "mass_length",
        "mass_width", "finger_length", "finger_gap", "anchor_span",
    )
    #: Additively varied fields ("relative angles", degrees).
    VARIED_ABSOLUTE = ("spring_angle_deg",)

    def validate(self):
        """Raise on non-physical values; returns self for chaining."""
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)):
                raise CircuitError(
                    "geometry field {!r} must be numeric".format(f.name))
            if f.name not in self.VARIED_ABSOLUTE and value <= 0:
                raise CircuitError(
                    "geometry field {!r} must be positive, got {!r}".format(
                        f.name, value))
        if self.beam_width >= self.beam_length:
            raise CircuitError("beam width must be far below beam length")
        return self

    def perturbed(self, rng, relative_spread=0.08, angle_sigma_deg=1.0):
        """One Monte-Carlo process draw.

        Lengths/widths move multiplicatively by a uniform
        ``relative_spread``; the spring angle receives an additive
        Gaussian disturbance of ``angle_sigma_deg`` degrees.
        """
        updates = {
            name: getattr(self, name)
            * (1.0 + rng.uniform(-relative_spread, relative_spread))
            for name in self.VARIED_RELATIVE
        }
        for name in self.VARIED_ABSOLUTE:
            updates[name] = getattr(self, name) + rng.normal(
                0.0, angle_sigma_deg)
        return replace(self, **updates)

    def as_dict(self):
        """All fields as a plain dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
