"""Deterministic parallel Monte-Carlo simulation engine.

Monte-Carlo data generation (paper Fig. 1) is the dominant wall-clock
cost of the whole flow: every op-amp instance is five real circuit
analyses.  This module fans the per-instance simulations out across
worker processes while guaranteeing **bit-identical datasets to a
serial run** at any worker count.

The seed tree
-------------

The guarantee rests on per-instance seeding.  A run's master seed
builds one :class:`numpy.random.SeedSequence`, and instance slot ``i``
draws from the ``i``-th spawned child stream::

    SeedSequence(seed) --spawn--> child 0 -> rng for slot 0
                                  child 1 -> rng for slot 1
                                  ...

Each slot's parameter draws -- including any resamples after a failed
simulation -- stay inside the slot's own stream, so a slot's result is
a pure function of ``(dut, seed, slot index)``:

* execution order and worker count cannot change any value;
* a failure in slot ``i`` never shifts the draws of slot ``i + 1``
  (unlike a single shared stream, where every resample displaces all
  later instances);
* spawned children are keyed by index, so the first ``k`` slots of an
  ``n``-instance run equal a ``k``-instance run outright (populations
  can be grown or subsampled without resimulating).

The legacy single-shared-stream draw order remains available as
``seed_mode="sequential"`` in :func:`repro.process.montecarlo.
generate_dataset` for back-compat with seed-pinned datasets; it is
inherently order-dependent and therefore serial-only.

DUT purity
----------

Parallel generation ships a pickled copy of the DUT to every worker,
so ``sample_parameters``/``measure`` must be pure functions of their
inputs.  Stateful wrappers (e.g. a :class:`~repro.process.defects.
DefectInjector` counting ``n_injected``) still produce correct data,
but their in-process counters only reflect the instances their own
copy simulated -- run them serially when the side state matters.

Engines
-------

``engine="scalar"`` simulates slots one at a time through
``dut.measure``.  ``engine="batched"`` gathers whole slot waves and
routes them through ``dut.measure_batch`` -- the batched MNA kernel of
:mod:`repro.circuit.batch`, which stacks every instance's circuit
systems into single LAPACK calls.  The seed tree is untouched:
parameters are still drawn per slot from per-slot streams (resamples
included), so the dataset, the failure accounting and the abort
decision are identical between engines, at any worker count, and the
two compose (each worker process runs the batched kernel on its own
slot chunks).  Slots that fail simulation are resampled in follow-up
waves containing only the retrying slots.

Entry points
------------

:func:`generate_instances` simulates one population and returns the
raw value matrix plus a :class:`~repro.process.montecarlo.
GenerationReport`; :func:`generate_lot_instances` flattens many
independent lots (device x temperature x lot batches) into one slot
pool so small lots cannot leave workers idle.  Both are wrapped by
:func:`repro.process.montecarlo.generate_dataset` /
:func:`~repro.process.montecarlo.generate_many`, which add the
:class:`~repro.process.dataset.SpecDataset` packaging.
"""

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError, ReproError
from repro.process.montecarlo import (
    ENGINES,
    GenerationReport,
    default_max_failures,
)
from repro.runtime.parallel import make_pool, resolve_n_jobs
from repro.telemetry import get_telemetry

#: Per-process worker state (set by :func:`_init_simulation_worker`).
_WORKER = {}

#: Slots per ``measure_batch`` call of the batched engine: large enough
#: to amortize the stamp-plan compilation and stacked-solve overhead,
#: small enough to bound the stacked-array working set (a transient
#: waveform stack is ``slots x steps x unknowns`` floats).
BATCH_SLOTS = 128


def _require_engine(engine, duts):
    """Validate the engine choice against the lot's DUTs."""
    if engine not in ENGINES:
        raise DatasetError("engine must be one of {}".format(
            list(ENGINES)))
    if engine == "batched":
        for dut in duts:
            if getattr(dut, "measure_batch", None) is None:
                raise DatasetError(
                    "DUT {!r} does not implement measure_batch; use "
                    "engine='scalar'".format(
                        getattr(dut, "name", type(dut).__name__)))


def _batched_chunk_size(n_instances, n_jobs):
    """Slots per batched task: cap chunks so every worker gets work.

    With one worker the full :data:`BATCH_SLOTS` amortization wins;
    with several, chunks shrink toward ``n_instances / n_jobs`` so the
    batched kernel still composes with process fan-out on small
    populations (chunk boundaries never change any value).
    """
    if n_jobs <= 1:
        return BATCH_SLOTS
    per_worker = -(-n_instances // n_jobs)  # ceil division
    return max(1, min(BATCH_SLOTS, per_worker))


def instance_streams(seed, n_instances):
    """Per-slot child :class:`~numpy.random.SeedSequence` streams.

    Children are keyed by spawn index, so ``instance_streams(seed, k)``
    is always a prefix of ``instance_streams(seed, n)`` for ``k <= n``.
    """
    return np.random.SeedSequence(seed).spawn(n_instances)


def instance_streams_range(seed, start, stop):
    """Child streams for slots ``[start, stop)`` of a run's seed tree.

    ``SeedSequence.spawn`` keys child ``i`` as ``SeedSequence(entropy,
    spawn_key=(i,))``, so the children of any slot range can be built
    directly without materializing (or re-spawning) the prefix --
    bit-identical to ``instance_streams(seed, n)[start:stop]`` for any
    ``n >= stop``.  This is what lets the sharded dataset layer
    (:mod:`repro.data`) simulate any shard, or resume generation at an
    arbitrary slot, in isolation.
    """
    entropy = np.random.SeedSequence(seed).entropy
    return [np.random.SeedSequence(entropy, spawn_key=(i,))
            for i in range(start, stop)]


@dataclass
class SlotResult:
    """Outcome of simulating one instance slot.

    ``row`` is the measured specification vector, or ``None`` when the
    slot gave up (first error in ``"raise"`` mode, or the slot alone
    exhausted the run's failure budget).  ``n_attempts`` counts every
    simulation tried; ``failures`` their error messages in order;
    ``error`` the first exception, kept so ``"raise"`` mode can
    propagate the original error from the lowest failing slot.
    """

    row: object
    n_attempts: int
    failures: list
    error: object = None


def simulate_slot(dut, entropy, n_specs, on_error, failure_budget):
    """Simulate one instance slot to success or until it gives up.

    Resamples after failures draw from the same slot stream
    (``entropy``), keeping the slot a pure function of its inputs.
    ``failure_budget`` is the *run-wide* failure cap: once this slot
    alone has failed that many times the run is doomed regardless of
    the other slots, so it stops retrying.
    """
    rng = np.random.default_rng(entropy)
    failures = []
    attempts = 0
    first_error = None
    while True:
        params = dut.sample_parameters(rng)
        attempts += 1
        try:
            row = np.asarray(dut.measure(params), dtype=float)
        except ReproError as exc:
            failures.append(str(exc))
            first_error = first_error or exc
            if on_error == "raise" or len(failures) >= failure_budget:
                return SlotResult(None, attempts, failures, first_error)
            continue
        if row.shape != (n_specs,):
            raise DatasetError(
                "DUT measure() returned shape {}, expected ({},)".format(
                    row.shape, n_specs))
        if not np.all(np.isfinite(row)):
            failures.append("non-finite measurement")
            first_error = first_error or DatasetError(
                "non-finite measurement from DUT")
            if on_error == "raise" or len(failures) >= failure_budget:
                return SlotResult(None, attempts, failures, first_error)
            continue
        return SlotResult(row, attempts, failures, None)


def simulate_slots_batched(dut, entropies, n_specs, on_error,
                           failure_budget):
    """Simulate many instance slots through ``dut.measure_batch``.

    The batched counterpart of :func:`simulate_slot`: one
    ``measure_batch`` call simulates a whole wave of slots; slots whose
    measurement failed are resampled (from their own streams, exactly
    as the scalar loop would) and retried together in follow-up waves
    until every slot succeeds or gives up.  Per-slot draw sequences,
    failure lists, attempt counts and give-up decisions are identical
    to running :func:`simulate_slot` on each entropy -- the wave
    structure only changes *when* work happens, never what it computes.

    ``dut.measure_batch(params_list)`` must return one entry per
    parameter set, each either a 1-D value array or the
    :class:`~repro.errors.ReproError` that instance's scalar
    measurement would have raised.
    """
    n = len(entropies)
    rngs = [np.random.default_rng(entropy) for entropy in entropies]
    attempts = [0] * n
    failures = [[] for _ in range(n)]
    first_error = [None] * n
    rows = [None] * n
    active = list(range(n))
    while active:
        params = [dut.sample_parameters(rngs[slot]) for slot in active]
        results = dut.measure_batch(params)
        if len(results) != len(active):
            raise DatasetError(
                "DUT measure_batch() returned {} results for {} "
                "parameter sets".format(len(results), len(active)))
        retry = []
        for slot, result in zip(active, results):
            attempts[slot] += 1
            if isinstance(result, ReproError):
                message, error = str(result), result
            else:
                row = np.asarray(result, dtype=float)
                if row.shape != (n_specs,):
                    raise DatasetError(
                        "DUT measure_batch() returned shape {}, "
                        "expected ({},)".format(row.shape, n_specs))
                if np.all(np.isfinite(row)):
                    rows[slot] = row
                    continue
                message = "non-finite measurement"
                error = DatasetError("non-finite measurement from DUT")
            failures[slot].append(message)
            if first_error[slot] is None:
                first_error[slot] = error
            if (on_error != "raise"
                    and len(failures[slot]) < failure_budget):
                retry.append(slot)
        active = retry
    return [SlotResult(rows[slot], attempts[slot], failures[slot],
                       None if rows[slot] is not None
                       else first_error[slot])
            for slot in range(n)]


def _init_simulation_worker(duts, n_specs, on_error, budgets):
    """Pool initializer: park the shared lot configuration per process."""
    _WORKER["duts"] = duts
    _WORKER["n_specs"] = n_specs
    _WORKER["on_error"] = on_error
    _WORKER["budgets"] = budgets


def _simulate_slot_task(task):
    """Simulate one ``(lot index, slot entropy)`` task in a worker."""
    lot, entropy = task
    return simulate_slot(_WORKER["duts"][lot], entropy,
                         _WORKER["n_specs"][lot], _WORKER["on_error"],
                         _WORKER["budgets"][lot])


def _simulate_chunk_task(task):
    """Simulate one ``(lot index, entropy chunk)`` batched-kernel task."""
    lot, entropies = task
    return simulate_slots_batched(_WORKER["duts"][lot], entropies,
                                  _WORKER["n_specs"][lot],
                                  _WORKER["on_error"],
                                  _WORKER["budgets"][lot])


def _record_sim_progress(tel, n_slots, seconds, d_attempts, d_failures,
                         n_failed, budget):
    """Fold one simulated slot wave into the telemetry registry.

    Called parent-side only (worker processes carry no telemetry):
    attempt/failure deltas come from the run's
    :class:`~repro.process.montecarlo.GenerationReport`, so the
    counters are identical at any worker count and either engine.
    """
    tel.counter("repro_sim_slots_total", n_slots)
    tel.counter("repro_sim_attempts_total", d_attempts)
    resamples = d_attempts - n_slots
    if resamples > 0:
        tel.counter("repro_sim_resamples_total", resamples)
    if d_failures:
        tel.counter("repro_sim_failures_total", d_failures)
    tel.counter("repro_sim_seconds_total", seconds)
    tel.observe("repro_sim_batch_seconds", seconds)
    if budget:
        tel.gauge("repro_sim_failure_budget_used", n_failed / budget)


class _LotCollector:
    """Accumulates one lot's slot results, strictly in slot order.

    The collector is where the run-level failure semantics live:
    failures replay in slot order and the run aborts the moment the
    budget is met, so the abort decision (and its message) is
    identical at any worker count.
    """

    def __init__(self, n_instances, n_specs, on_error, max_failures,
                 report=None):
        self._values = np.empty((n_instances, n_specs))
        self._slot = 0
        self._on_error = on_error
        self._max_failures = max_failures
        # A caller-provided report carries failure accounting across
        # collectors (the batch streaming path shares one run-level
        # budget over many per-batch collectors).
        self.report = (GenerationReport(n_requested=n_instances)
                       if report is None else report)

    def add(self, result):
        """Merge the next slot's result; raises on abort conditions."""
        self.report.n_simulated += result.n_attempts
        if result.error is not None and self._on_error == "raise":
            raise result.error
        for message in result.failures:
            self.report.record_failure(message)
            if self.report.n_failed >= self._max_failures:
                raise DatasetError(
                    "Monte-Carlo generation aborted: {} simulation "
                    "failures (last: {})".format(self.report.n_failed,
                                                 message))
        self._values[self._slot] = result.row
        self._slot += 1

    def finish(self):
        return self._values, self.report


def generate_lot_instances(lots, n_jobs=None, on_error="resample",
                           engine="scalar"):
    """Simulate many independent Monte-Carlo lots through one slot pool.

    Slot results are consumed incrementally in slot order, so an abort
    (failure budget met, or first error in ``"raise"`` mode) stops the
    run without simulating the remaining slots: serially nothing past
    the abort point runs at all (the batched engine stops at chunk
    granularity); in parallel the queued tasks are cancelled and only
    in-flight slots complete.

    Parameters
    ----------
    lots:
        Sequence of ``(dut, n_instances, seed, max_failures)`` tuples;
        ``max_failures=None`` selects :func:`~repro.process.montecarlo.
        default_max_failures`.
    n_jobs:
        Worker processes shared by *all* lots' instance slots (``None``
        / ``1`` serial, ``-1`` one per CPU).  Results are independent
        of the worker count.
    on_error:
        ``"resample"`` or ``"raise"``, applied to every lot.
    engine:
        ``"scalar"`` (one ``dut.measure`` per slot) or ``"batched"``
        (slot chunks through ``dut.measure_batch`` and the stacked MNA
        kernel).  Datasets, reports and abort decisions are identical
        between engines; see the module docstring.

    Returns
    -------
    list of (values, GenerationReport)
        One entry per lot, in input order.
    """
    lots = list(lots)
    if on_error not in ("resample", "raise"):
        raise DatasetError("on_error must be 'resample' or 'raise'")
    _require_engine(engine, [lot[0] for lot in lots])
    n_jobs = resolve_n_jobs(n_jobs)
    duts, n_specs, budgets, tasks, collectors = [], [], [], [], []
    for lot_index, (dut, n_instances, seed, max_failures) in enumerate(lots):
        if n_instances <= 0:
            raise DatasetError("n_instances must be positive")
        budget = (default_max_failures(n_instances)
                  if max_failures is None else int(max_failures))
        duts.append(dut)
        n_specs.append(len(dut.specifications))
        budgets.append(budget)
        streams = instance_streams(seed, n_instances)
        if engine == "batched":
            chunk = _batched_chunk_size(n_instances, n_jobs)
            tasks.extend((lot_index,
                          tuple(streams[start:start + chunk]))
                         for start in range(0, n_instances, chunk))
        else:
            tasks.extend((lot_index, stream) for stream in streams)
        collectors.append(_LotCollector(n_instances, n_specs[lot_index],
                                        on_error, budget))

    task_fn = (_simulate_chunk_task if engine == "batched"
               else _simulate_slot_task)
    tel = get_telemetry()

    def feed(lot_index, result):
        collector = collectors[lot_index]
        if engine == "batched":
            for slot_result in result:
                collector.add(slot_result)
        else:
            collector.add(result)

    initargs = (tuple(duts), tuple(n_specs), on_error, tuple(budgets))
    with tel.span("sim.lots", lots=len(lots), engine=engine,
                  n_jobs=n_jobs,
                  slots=sum(int(lot[1]) for lot in lots)):
        t_start = time.perf_counter()
        if n_jobs <= 1 or len(tasks) <= 1:
            # Lazy in-process map: an abort stops further simulation.
            _init_simulation_worker(*initargs)
            for task in tasks:
                feed(task[0], task_fn(task))
        else:
            pool = make_pool(min(n_jobs, len(tasks)),
                             initializer=_init_simulation_worker,
                             initargs=initargs)
            try:
                for task, result in zip(tasks, pool.map(task_fn, tasks)):
                    feed(task[0], result)
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
        # One shared scheduler simulated every lot; the whole run's
        # wall clock is the honest per-report figure (lots overlap in
        # time).
        elapsed = time.perf_counter() - t_start
    if tel.enabled:
        for collector, budget in zip(collectors, budgets):
            report = collector.report
            _record_sim_progress(
                tel, collector._slot, elapsed / len(collectors),
                report.n_simulated, report.n_failed, report.n_failed,
                budget)
    for collector in collectors:
        collector.report.elapsed_s = elapsed
    return [collector.finish() for collector in collectors]


def generate_instances(dut, n_instances, seed, n_jobs=None,
                       on_error="resample", max_failures=None,
                       engine="scalar"):
    """Simulate one Monte-Carlo population with per-instance seeding.

    Returns ``(values, report)``; see :func:`generate_lot_instances`
    for the parameters and the determinism contract.
    """
    [(values, report)] = generate_lot_instances(
        [(dut, n_instances, seed, max_failures)],
        n_jobs=n_jobs, on_error=on_error, engine=engine)
    return values, report


def generate_instance_batches(dut, n_instances, seed, batch_size,
                              n_jobs=None, on_error="resample",
                              max_failures=None, engine="scalar",
                              first_slot=0, report=None):
    """Stream one Monte-Carlo population as consecutive value batches.

    A generator yielding ``(batch, n_specs)`` value arrays of at most
    ``batch_size`` rows whose concatenation is **bit-identical** to
    :func:`generate_instances` with the same ``(dut, n_instances,
    seed)`` -- at any ``batch_size`` and any ``n_jobs``.  Slot ``i``
    always draws from the ``i``-th child of the run's seed tree, so
    batch boundaries only decide *when* a row is handed out, never what
    it contains.  The full population is never materialized, which is
    what lets :class:`repro.floor.engine.TestFloor` push simulated
    traffic of arbitrary length through a fixed memory footprint.

    Failure accounting is run-level, exactly as in
    :func:`generate_instances`: a shared budget of ``max_failures``
    (default :func:`~repro.process.montecarlo.default_max_failures`)
    spans all batches, failures replay in slot order, and the abort
    decision is identical at any worker count.  One worker pool is
    reused across all batches, and seed-tree children are built one
    batch at a time from their spawn keys
    (:func:`instance_streams_range`), keeping memory proportional to
    ``batch_size`` rather than ``n_instances``.

    ``engine="batched"`` simulates each batch's slots through
    ``dut.measure_batch`` and the stacked MNA kernel (in sub-chunks of
    :data:`BATCH_SLOTS`) instead of one ``dut.measure`` per slot --
    same rows, same failure accounting, at any ``batch_size``.

    ``first_slot`` starts the stream at that slot of the seed tree
    instead of slot 0: the yielded rows equal rows ``[first_slot,
    first_slot + n_instances)`` of a cold run with the same seed.
    Together with a caller-provided ``report`` (which carries the
    failure accounting of the already-generated prefix), this is the
    *resume* primitive of :mod:`repro.data`: extending a dataset never
    re-simulates the rows it already holds.  ``report.elapsed_s``
    accumulates the wall-clock spent simulating (consumer time between
    batches is excluded).
    """
    if n_instances <= 0:
        raise DatasetError("n_instances must be positive")
    batch_size = int(batch_size)
    if batch_size < 1:
        raise DatasetError("batch_size must be positive")
    first_slot = int(first_slot)
    if first_slot < 0:
        raise DatasetError("first_slot must be non-negative")
    if on_error not in ("resample", "raise"):
        raise DatasetError("on_error must be 'resample' or 'raise'")
    _require_engine(engine, [dut])
    n_specs = len(dut.specifications)
    budget = (default_max_failures(n_instances)
              if max_failures is None else int(max_failures))
    if report is None:
        report = GenerationReport(n_requested=n_instances)

    def batches():
        produced = 0
        while produced < n_instances:
            take = min(batch_size, n_instances - produced)
            start = first_slot + produced
            chunk = instance_streams_range(seed, start, start + take)
            produced += take
            yield chunk, _LotCollector(len(chunk), n_specs, on_error,
                                       budget, report=report)

    def chunk_results(streams):
        """Slot results of one batch chunk through the batched kernel."""
        for start in range(0, len(streams), BATCH_SLOTS):
            yield from simulate_slots_batched(
                dut, tuple(streams[start:start + BATCH_SLOTS]),
                n_specs, on_error, budget)

    def record_batch(tel, collector, seconds, prev):
        if tel.enabled:
            _record_sim_progress(
                tel, collector._slot, seconds,
                report.n_simulated - prev[0],
                report.n_failed - prev[1], report.n_failed, budget)

    tel = get_telemetry()
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs <= 1 or n_instances <= 1:
        # Plain local calls: generators interleave (a consumer may
        # alternate several streams), so the serial path must not
        # touch the process-global _WORKER configuration.
        for chunk, collector in batches():
            prev = (report.n_simulated, report.n_failed)
            with tel.span("sim.batch", engine=engine) as span:
                t0 = time.perf_counter()
                if engine == "batched":
                    for result in chunk_results(chunk):
                        collector.add(result)
                else:
                    for stream in chunk:
                        collector.add(simulate_slot(
                            dut, stream, n_specs, on_error, budget))
                elapsed = time.perf_counter() - t0
                span.set(slots=collector._slot)
            report.elapsed_s += elapsed
            record_batch(tel, collector, elapsed, prev)
            yield collector.finish()[0]
        return

    pool = make_pool(min(n_jobs, n_instances),
                     initializer=_init_simulation_worker,
                     initargs=((dut,), (n_specs,), on_error, (budget,)))
    try:
        for chunk, collector in batches():
            prev = (report.n_simulated, report.n_failed)
            with tel.span("sim.batch", engine=engine,
                          n_jobs=n_jobs) as span:
                t0 = time.perf_counter()
                if engine == "batched":
                    size = _batched_chunk_size(len(chunk), n_jobs)
                    chunk_tasks = [
                        (0, tuple(chunk[start:start + size]))
                        for start in range(0, len(chunk), size)]
                    for results in pool.map(_simulate_chunk_task,
                                            chunk_tasks):
                        for result in results:
                            collector.add(result)
                else:
                    for result in pool.map(
                            _simulate_slot_task,
                            [(0, stream) for stream in chunk]):
                        collector.add(result)
                elapsed = time.perf_counter() - t0
                span.set(slots=collector._slot)
            report.elapsed_s += elapsed
            record_batch(tel, collector, elapsed, prev)
            yield collector.finish()[0]
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
