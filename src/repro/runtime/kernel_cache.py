"""Cache-aware Gram-matrix computation keyed by the active feature subset.

The greedy loop of :class:`repro.core.compaction.TestCompactor` fits a
guard-banded SVM pair for every candidate elimination.  All of those
fits train on *column subsets of the same normalized measurement
matrix*, and the RBF kernel's squared distances decompose per column::

    d2_S(i, k) = sum_{j in S} (Z[i, j] - Z[k, j])**2

so the pairwise-distance matrix of any feature subset ``S`` is a sum
of per-column distance matrices that can be computed once and shared:

* the strict and loose guard-band models of one candidate train on the
  same subset -> the same Gram matrix (one build, two fits);
* the final refit after the greedy loop repeats the last accepted
  candidate -> a pure cache hit;
* speculative parallel evaluation may revisit a candidate after a
  mispredicted branch -> another hit.

The computation route (subtract a small complement from the cached
full-set matrix, else evaluate the subset directly) and the
column-accumulation order depend only on the subset itself -- never on
what the cache happens to hold -- so the same subset yields the
*bit-identical* matrix in every process.  That property lets
:class:`repro.runtime.engine.CompactionEngine` guarantee serial and
parallel runs produce identical results.

Memory is explicitly budgeted: per-column matrices, composed subset
matrices and exponentiated Gram matrices are all ``(n, n)`` float64,
so the cache tracks its footprint and evicts least-recently-used
entries (derived matrices first, per-column building blocks last)
rather than growing without bound on paper-scale populations.
"""

from collections import OrderedDict

import numpy as np

from repro.errors import CompactionError
from repro.learn.kernels import squared_distances

#: Default memory budget for one cache instance (bytes).
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Complements up to this size are composed by subtracting per-column
#: matrices from the full-set distances; larger ones fall back to one
#: BLAS evaluation of the subset columns.  The greedy loop's candidate
#: subsets drop only ``|eliminated| + 1`` columns, so its hottest early
#: stages always take the cheap subtraction route.
SUBTRACT_LIMIT = 3


class SubsetGramView:
    """Lightweight handle binding a :class:`GramCache` to one subset.

    Instances satisfy the provider protocol expected by
    :meth:`repro.learn.svm.SVC.set_train_gram_view`: ``n`` is the
    training-row count and ``gram(gamma)`` returns the RBF Gram matrix
    of the subset's normalized training columns.
    """

    def __init__(self, cache, names):
        self._cache = cache
        self._names = tuple(names)

    @property
    def n(self):
        """Number of training rows the Gram matrix covers."""
        return self._cache.n

    @property
    def names(self):
        """The feature subset this view serves."""
        return self._names

    def matches(self, X):
        """Whether ``X`` is exactly the subset's normalized columns.

        The cheap O(n*k) comparison that keeps a stale view (same
        shape, different data) from silently serving a wrong Gram.
        """
        return self._cache.matches(self._names, X)

    def distances(self):
        """Pairwise squared distances of the subset's columns."""
        return self._cache.distances(self._names)

    def gram(self, gamma):
        """RBF Gram matrix ``exp(-gamma * d2)`` for the subset."""
        return self._cache.gram(self._names, gamma)

    def __repr__(self):
        return "SubsetGramView({} features over {} rows)".format(
            len(self._names), self.n)


class GramCache:
    """Shared per-column distance store with subset-level Gram reuse.

    Parameters
    ----------
    values_normalized:
        The full normalized measurement matrix ``(n, m)`` (every
        specification still a column); training subsets must be column
        selections of exactly this matrix.
    names:
        Column names, in matrix order.
    max_bytes:
        Soft memory budget across everything the cache stores.
    """

    def __init__(self, values_normalized, names, max_bytes=DEFAULT_MAX_BYTES):
        Z = np.asarray(values_normalized, dtype=float)
        if Z.ndim != 2:
            raise CompactionError("expected a 2-D normalized matrix")
        names = tuple(names)
        if len(names) != Z.shape[1]:
            raise CompactionError(
                "{} names for {} columns".format(len(names), Z.shape[1]))
        self._Z = Z
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}
        self.max_bytes = int(max_bytes)
        self._matrix_bytes = Z.shape[0] * Z.shape[0] * 8
        # All three stores are LRU (most recently used at the end).
        self._columns = OrderedDict()   # name -> per-column distances
        self._subsets = OrderedDict()   # canonical names -> summed distances
        self._grams = OrderedDict()     # (canonical names, gamma) -> Gram
        self._full = None               # full-set distances (pinned)
        self.stats = {
            "column_builds": 0,
            "distance_hits": 0, "distance_misses": 0,
            "gram_hits": 0, "gram_misses": 0,
            "evictions": 0,
        }

    @classmethod
    def from_dataset(cls, dataset, **kwargs):
        """Build a cache for a :class:`~repro.process.dataset.SpecDataset`."""
        return cls(dataset.normalized_values(), dataset.names, **kwargs)

    # -- bookkeeping ------------------------------------------------------
    @property
    def n(self):
        """Number of rows (device instances) covered."""
        return self._Z.shape[0]

    @property
    def names(self):
        """All column names the cache can serve subsets of."""
        return self._names

    @property
    def nbytes(self):
        """Current cached-matrix footprint in bytes."""
        entries = (len(self._columns) + len(self._subsets)
                   + len(self._grams) + (1 if self._full is not None else 0))
        return entries * self._matrix_bytes

    def _canonical(self, names):
        """Subset key in dataset column order (composition order too)."""
        try:
            idx = sorted(self._index[name] for name in set(names))
        except KeyError as exc:
            raise CompactionError(
                "unknown specification {!r} for this cache".format(
                    exc.args[0]))
        if len(idx) != len(tuple(names)):
            raise CompactionError("duplicate specification in subset")
        if not idx:
            raise CompactionError("empty feature subset")
        return tuple(self._names[i] for i in idx)

    def _reserve(self, extra_matrices=1):
        """Evict LRU entries until ``extra_matrices`` more would fit.

        Derived matrices (Grams, then subset sums) go first; per-column
        building blocks are the cheapest to miss, so they go last.
        """
        budget = self.max_bytes - extra_matrices * self._matrix_bytes
        for store in (self._grams, self._subsets, self._columns):
            while self.nbytes > budget and store:
                store.popitem(last=False)
                self.stats["evictions"] += 1
        # A budget smaller than one matrix cannot be honored; the cache
        # then holds just the entry being built (degraded, not broken).

    def _touch(self, store, key):
        store.move_to_end(key)
        return store[key]

    # -- distance / Gram computation -------------------------------------
    def _column(self, name):
        """Per-column pairwise squared distances (cached)."""
        if name in self._columns:
            return self._touch(self._columns, name)
        z = self._Z[:, self._index[name]]
        diff = z[:, None] - z[None, :]
        col = diff * diff
        self.stats["column_builds"] += 1
        self._reserve()
        self._columns[name] = col
        return col

    def _full_distances(self):
        """Full-set pairwise squared distances (built once, pinned)."""
        if self._full is None:
            self._reserve()
            self._full = squared_distances(self._Z, self._Z)
        return self._full

    def distances(self, names):
        """Pairwise squared-distance matrix for a feature subset.

        The computation route depends only on the subset's size --
        small complements are subtracted column-by-column (canonical
        order) from the cached full-set matrix, anything else is one
        direct BLAS evaluation -- so the result is bit-identical no
        matter which process computes it or what the cache already
        holds.
        """
        key = self._canonical(names)
        if key in self._subsets:
            self.stats["distance_hits"] += 1
            return self._touch(self._subsets, key)
        self.stats["distance_misses"] += 1
        complement = [n for n in self._names if n not in set(key)]
        if not complement:
            total = self._full_distances()
        elif len(complement) <= SUBTRACT_LIMIT:
            total = self._full_distances().copy()
            for name in complement:
                total -= self._column(name)
            # Exact cancellation can leave tiny negative residues.
            np.maximum(total, 0.0, out=total)
        else:
            idx = [self._index[n] for n in key]
            Xs = self._Z[:, idx]
            total = squared_distances(Xs, Xs)
        self._reserve()
        self._subsets[key] = total
        return total

    def gram(self, names, gamma):
        """RBF Gram matrix ``exp(-gamma * d2)`` for a feature subset."""
        gamma = float(gamma)
        if gamma <= 0:
            raise CompactionError("gamma must be positive")
        key = (self._canonical(names), gamma)
        if key in self._grams:
            self.stats["gram_hits"] += 1
            return self._touch(self._grams, key)
        self.stats["gram_misses"] += 1
        K = np.exp(-gamma * self.distances(names))
        self._reserve()
        self._grams[key] = K
        return K

    def matches(self, names, X):
        """Whether ``X`` equals the named normalized columns exactly.

        Compared in the given name order (the order a caller's
        feature matrix uses), not the canonical cache order.
        """
        names = tuple(names)
        try:
            idx = [self._index[n] for n in names]
        except KeyError:
            return False
        X = np.asarray(X)
        if X.shape != (self.n, len(idx)):
            return False
        return bool(np.array_equal(X, self._Z[:, idx]))

    def view(self, names):
        """A :class:`SubsetGramView` for ``names`` (validated now)."""
        self._canonical(names)
        return SubsetGramView(self, names)

    def __repr__(self):
        return ("GramCache({} rows, {} columns, {:.1f} MiB cached, "
                "{} evictions)").format(
                    self.n, len(self._names),
                    self.nbytes / (1024.0 * 1024.0),
                    self.stats["evictions"])
