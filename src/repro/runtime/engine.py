"""The parallel, cache-aware compaction engine.

:class:`CompactionEngine` is a drop-in :class:`~repro.core.compaction.
TestCompactor` that makes the paper's greedy loop (Fig. 2) fast
without changing what it computes:

* **Kernel/Gram caching** -- every candidate fit trains on a column
  subset of the same normalized training matrix, so Gram matrices are
  built through a shared :class:`~repro.runtime.kernel_cache.GramCache`
  keyed by the active feature subset.  The strict/loose guard-band
  pair shares one matrix per candidate, overlapping candidate subsets
  share per-column building blocks, and the final refit after the loop
  reuses the last accepted candidate's model outright.
* **Warm starts** -- the loose model's SMO run is seeded from the
  strict model's dual solution (labels differ only on guard-band
  devices), cutting its iteration count sharply.
* **Speculative parallel fan-out** -- with ``n_jobs > 1`` the engine
  evaluates upcoming candidates *before* the current decision is
  known, along both the "rejected" and "accepted" branches of the
  decision tree (breadth-first, nearest decisions first).  Whichever
  way each decision resolves, the next candidate's evaluation is
  usually already in flight; work on the wrong branch is discarded.
  Because every evaluation is a pure function of its candidate subset
  and decisions are consumed strictly in examination order, the
  parallel engine returns **bit-for-bit identical results to the
  serial engine** -- speculation changes wall-clock time, never the
  answer.
* **Batch scheduling** -- :meth:`CompactionEngine.run_many` compacts
  many independent ``(train, test)`` dataset pairs (Monte-Carlo lots,
  tolerance sweeps) through one process pool, preserving input order.

Example
-------
::

    from repro.runtime import CompactionEngine

    engine = CompactionEngine(tolerance=0.01, n_jobs=4)
    result = engine.run(train, test)           # same CompactionResult
    results = engine.run_many([(tr1, te1), (tr2, te2)])
"""

from collections import deque

from repro.core.compaction import CompactionResult, CompactionStep, \
    TestCompactor
from repro.errors import CompactionError
from repro.runtime.kernel_cache import DEFAULT_MAX_BYTES, GramCache
from repro.runtime.parallel import make_pool, resolve_n_jobs

#: Per-process state for pool workers (set by the initializers below).
_WORKER = {}


def _init_candidate_worker(engine, train, test):
    """Pool initializer for speculative candidate evaluation."""
    engine._prepare_run(train)
    _WORKER["engine"] = engine
    _WORKER["train"] = train
    _WORKER["test"] = test


def _eval_candidate(candidate):
    """Evaluate one candidate elimination inside a pool worker."""
    engine = _WORKER["engine"]
    model, report = engine.evaluate_subset(
        _WORKER["train"], _WORKER["test"], candidate)
    return report, model


def _init_pair_worker(engine):
    """Pool initializer for batch (run_many) workers."""
    _WORKER["engine"] = engine


def _run_pair(pair):
    """Compact one (train, test) pair inside a pool worker."""
    train, test = pair
    return _WORKER["engine"].run(train, test)


def speculation_plan(eliminated, next_index, order, limit, max_eliminable):
    """Candidate subsets worth evaluating from the current loop state.

    Walks the accept/reject decision tree breadth-first from the state
    ``(eliminated, next_index)``: the certain head candidate first,
    then both possible next candidates, and so on.  Nearer decisions
    are listed first, so feeding the first ``limit`` entries to a pool
    keeps every worker busy on the work most likely to be needed.
    States the greedy loop can never reach (elimination floor hit,
    order exhausted) produce no candidates.

    Returns a list of candidate tuples; the head candidate, when the
    loop still has one to examine, is always first.
    """
    plan = []
    seen = set()
    queue = deque([(tuple(eliminated), next_index)])
    while queue and len(plan) < limit:
        state_elim, i = queue.popleft()
        if i >= len(order) or len(state_elim) >= max_eliminable:
            continue
        candidate = state_elim + (order[i],)
        if candidate not in seen:
            seen.add(candidate)
            plan.append(candidate)
        queue.append((state_elim, i + 1))   # branch: candidate rejected
        queue.append((candidate, i + 1))    # branch: candidate accepted
    return plan


class CompactionEngine(TestCompactor):
    """Parallel cache-aware drop-in for :class:`TestCompactor`.

    Parameters (in addition to :class:`TestCompactor`'s)
    ----------
    n_jobs:
        Worker processes for speculative candidate evaluation and
        :meth:`run_many` batches.  ``1``/``None`` runs serially
        in-process, ``-1`` uses every CPU.
    use_kernel_cache:
        Share Gram matrices across candidate fits through a
        :class:`~repro.runtime.kernel_cache.GramCache` (disabled
        automatically when a grid compactor rewrites training rows).
    warm_start:
        Seed each loose guard-band fit from its strict sibling.
    cache_max_bytes:
        Memory budget of the per-run Gram cache.

    ``run`` returns exactly the :class:`CompactionResult` a serial run
    of the same engine configuration would, with ``result.stats``
    additionally describing what the runtime saved.
    """

    def __init__(self, tolerance=0.01, guard_band=0.05, order=None,
                 model_factory=None, grid_compactor=None,
                 count_guard_as_error=False, min_kept=1,
                 n_jobs=1, use_kernel_cache=True, warm_start=True,
                 cache_max_bytes=DEFAULT_MAX_BYTES):
        super().__init__(
            tolerance=tolerance, guard_band=guard_band, order=order,
            model_factory=model_factory, grid_compactor=grid_compactor,
            count_guard_as_error=count_guard_as_error, min_kept=min_kept,
            warm_start=warm_start)
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.use_kernel_cache = bool(use_kernel_cache)
        self.cache_max_bytes = int(cache_max_bytes)

    # -- run machinery ----------------------------------------------------
    def _prepare_run(self, train):
        """Reset per-run state: fresh Gram cache bound to ``train``."""
        if self.use_kernel_cache and self.grid_compactor is None:
            self.kernel_cache = GramCache.from_dataset(
                train, max_bytes=self.cache_max_bytes)
        else:
            self.kernel_cache = None

    def _serial_clone(self):
        """A single-process copy of this engine for pool workers.

        The clone shares configuration but not per-run state; each
        worker builds its own Gram cache from the shipped training
        data (bit-identical to the parent's by construction).
        """
        return CompactionEngine(
            tolerance=self.tolerance, guard_band=self.guard_band,
            order=self.order, model_factory=self.model_factory,
            grid_compactor=self.grid_compactor,
            count_guard_as_error=self.count_guard_as_error,
            min_kept=self.min_kept, n_jobs=1,
            use_kernel_cache=self.use_kernel_cache,
            warm_start=self.warm_start,
            cache_max_bytes=self.cache_max_bytes)

    def __getstate__(self):
        # The Gram cache is per-run, potentially huge and process-local;
        # workers rebuild their own.
        state = self.__dict__.copy()
        state["kernel_cache"] = None
        return state

    # -- the greedy loop ---------------------------------------------------
    def run(self, train, test):
        """Execute the paper's Fig. 2 flow (see :class:`TestCompactor`).

        With ``n_jobs > 1`` candidate evaluations are speculated
        across worker processes; the returned result is identical to
        a serial run.
        """
        if train.specifications != test.specifications:
            raise CompactionError(
                "train and test datasets must share specifications")
        order = self._resolve_order(train)
        self._prepare_run(train)
        max_eliminable = len(train.names) - self.min_kept

        if self.n_jobs > 1:
            eliminated, steps, last_fit, spec_stats = self._run_parallel(
                train, test, order, max_eliminable)
        else:
            # The serial engine is the base class's greedy loop, run
            # against the shared Gram cache prepared above.
            eliminated, steps, last_fit = self._greedy_loop(
                train, test, order)
            spec_stats = None

        # The final refit of the plain compactor repeats the last
        # accepted candidate's evaluation verbatim; reuse it.
        if last_fit is not None and last_fit[0] == eliminated:
            model, final_report = last_fit[1], last_fit[2]
            refit_reused = True
        else:
            model, final_report = self.evaluate_subset(
                train, test, eliminated)
            refit_reused = False

        stats = {
            "n_jobs": self.n_jobs,
            "candidates_examined": len(steps),
            "final_refit_reused": refit_reused,
        }
        if self.kernel_cache is not None and self.n_jobs == 1:
            # Parallel runs fit in pool workers against their own
            # caches; the parent's cache sat idle, so its counters
            # would misreport what the run saved.
            stats["kernel_cache"] = dict(self.kernel_cache.stats)
        if spec_stats is not None:
            stats["speculation"] = spec_stats
        if hasattr(model, "release_kernel_cache"):
            model.release_kernel_cache()
        result = CompactionResult(
            kept=tuple(n for n in train.names
                       if n not in set(eliminated)),
            eliminated=tuple(eliminated),
            model=model,
            final_report=final_report,
            steps=steps,
            order=order,
            tolerance=self.tolerance,
            stats=stats,
        )
        self.kernel_cache = None  # release the per-run matrices
        return result

    def _run_parallel(self, train, test, order, max_eliminable):
        """Greedy loop with speculative cross-process evaluation."""
        eliminated = ()
        steps = []
        last_fit = None
        pending = {}  # candidate tuple -> Future
        window = 2 * self.n_jobs
        submitted = consumed = discarded = 0
        order_index = {name: i for i, name in enumerate(order)}
        clone = self._serial_clone()
        i = 0

        def still_plausible(candidate):
            """Could the loop still request this speculative result?

            True when the realized eliminated set is a prefix of the
            candidate's assumption and the remaining names sit at
            strictly increasing order positions not yet examined.
            """
            k = len(eliminated)
            if candidate[:k] != eliminated:
                return False
            positions = [order_index[name] for name in candidate[k:]]
            return (bool(positions) and positions[0] >= i
                    and all(b > a
                            for a, b in zip(positions, positions[1:])))

        with make_pool(self.n_jobs, initializer=_init_candidate_worker,
                       initargs=(clone, train, test)) as pool:
            while i < len(order):
                if len(eliminated) >= max_eliminable:
                    break
                head = eliminated + (order[i],)
                for candidate in speculation_plan(
                        eliminated, i, order, window, max_eliminable):
                    if candidate in pending:
                        continue
                    # The head decision gates all progress; everything
                    # else only fills the window.
                    if candidate == head or len(pending) < window:
                        pending[candidate] = pool.submit(
                            _eval_candidate, candidate)
                        submitted += 1
                report, model = pending.pop(head).result()
                consumed += 1
                accept = self._candidate_error(report) <= self.tolerance
                if accept:
                    eliminated = head
                    last_fit = (head, model, report)
                steps.append(CompactionStep(
                    test_name=order[i],
                    eliminated=accept,
                    report=report,
                    eliminated_so_far=tuple(eliminated)))
                i += 1
                for candidate in [c for c in pending
                                  if not still_plausible(c)]:
                    pending.pop(candidate).cancel()
                    discarded += 1
        spec_stats = {
            "submitted": submitted,
            "consumed": consumed,
            "discarded": discarded,
        }
        return eliminated, steps, last_fit, spec_stats

    # -- batch API ---------------------------------------------------------
    def run_many(self, pairs, n_jobs=None):
        """Compact many independent ``(train, test)`` pairs.

        One scheduler fans the pairs out across ``n_jobs`` worker
        processes (default: this engine's ``n_jobs``); each worker
        runs a serial engine with its own Gram cache.  Results are
        returned in input order.  This is the bulk entry point for
        Monte-Carlo lots and tolerance sweeps.
        """
        pairs = list(pairs)
        for pair in pairs:
            if len(pair) != 2:
                raise CompactionError(
                    "run_many expects (train, test) pairs")
        n_jobs = resolve_n_jobs(self.n_jobs if n_jobs is None else n_jobs)
        if n_jobs <= 1 or len(pairs) <= 1:
            return [self.run(train, test) for train, test in pairs]
        clone = self._serial_clone()
        with make_pool(min(n_jobs, len(pairs)),
                       initializer=_init_pair_worker,
                       initargs=(clone,)) as pool:
            return list(pool.map(_run_pair, pairs))
