"""Process-pool plumbing shared by the runtime engine.

All fan-out in :mod:`repro.runtime` goes through this module so the
serial fallback, worker-count resolution and pool construction are
decided in exactly one place.  Everything shipped to a worker must be
picklable; module-level task functions plus an ``initializer`` that
parks large shared state (datasets, engine configuration) in a worker
global keep the per-task payload small.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.errors import CompactionError


def cpu_count():
    """Usable CPU count (``os.cpu_count`` with a floor of 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs):
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; ``-1`` (or any negative value)
    means one worker per CPU; positive integers pass through.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise CompactionError("n_jobs must not be 0 (use 1 for serial)")
    if n_jobs < 0:
        return cpu_count()
    return n_jobs


def make_pool(n_jobs, initializer=None, initargs=()):
    """A :class:`ProcessPoolExecutor` with ``n_jobs`` workers.

    The caller is responsible for using it as a context manager (or
    calling ``shutdown``).  Callers must check ``n_jobs > 1`` first;
    asking for a pool of one is almost always a mistake, so it raises.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs <= 1:
        raise CompactionError("make_pool needs n_jobs > 1")
    return ProcessPoolExecutor(max_workers=n_jobs,
                               initializer=initializer,
                               initargs=initargs)


def parallel_map(fn, items, n_jobs=1, initializer=None, initargs=()):
    """``[fn(item) for item in items]`` with optional process fan-out.

    Results are returned in input order regardless of completion
    order.  With ``n_jobs`` resolving to 1 (or at most one item) the
    map runs serially in-process -- the degenerate path used whenever
    process startup would cost more than it buys.
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    with make_pool(min(n_jobs, len(items)), initializer=initializer,
                   initargs=initargs) as pool:
        return list(pool.map(fn, items))
