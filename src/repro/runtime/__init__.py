"""repro.runtime -- parallel, cache-aware execution of the compaction flow.

The paper's greedy pruning loop retrains a guard-banded SVM pair for
every candidate test elimination; this package is the production
runtime around that hot path:

``repro.runtime.kernel_cache``
    Gram/squared-distance matrices cached and composed per feature
    subset (the RBF distance decomposes per column, so candidate fits
    share per-column building blocks).
``repro.runtime.engine``
    :class:`CompactionEngine` -- a drop-in ``TestCompactor`` with
    kernel caching, SMO warm starts, speculative multi-process
    candidate evaluation (bit-identical to serial), and the
    :meth:`~repro.runtime.engine.CompactionEngine.run_many` batch
    scheduler for whole dataset lots.
``repro.runtime.simulation``
    The deterministic parallel Monte-Carlo generation engine:
    per-instance ``SeedSequence`` streams fan device simulation out
    across processes with bit-identical datasets at any worker count,
    including the :func:`~repro.runtime.simulation.
    generate_lot_instances` scheduler for whole lot batches and the
    ``engine="batched"`` switch that routes slot chunks through the
    stacked MNA kernel (:mod:`repro.circuit.batch`).
``repro.runtime.parallel``
    The process-pool plumbing (worker resolution, ordered maps,
    serial fallbacks) everything above shares.
"""

from repro.runtime.engine import CompactionEngine, speculation_plan
from repro.runtime.kernel_cache import GramCache, SubsetGramView
from repro.runtime.parallel import cpu_count, parallel_map, resolve_n_jobs
from repro.runtime.simulation import (
    generate_instance_batches,
    generate_instances,
    generate_lot_instances,
    instance_streams,
    simulate_slots_batched,
)

__all__ = [
    "CompactionEngine",
    "GramCache",
    "SubsetGramView",
    "cpu_count",
    "generate_instance_batches",
    "generate_instances",
    "generate_lot_instances",
    "instance_streams",
    "parallel_map",
    "resolve_n_jobs",
    "simulate_slots_batched",
    "speculation_plan",
]
