"""Crash-safe control plane: a checksummed write-ahead journal.

The cluster's registration manifest -- the ordered list of
register/hot-swap/retire operations that decides which artifact
versions serve production traffic -- used to live only in supervisor
memory: a supervisor crash forgot every hot-swap since boot.
:class:`StateJournal` makes the manifest durable with the standard
write-ahead discipline:

* **append-only JSONL**: one control-plane operation per line, each
  line prefixed with the SHA-256 checksum of its JSON payload and a
  contiguous sequence number, so replay can tell a *torn tail* (the
  shape a crash mid-append leaves behind) from *corruption* (a line
  that fails its checksum with valid records after it);
* **fsync before ack**: :meth:`append` returns only after the record
  reached the disk, so an acknowledged hot-swap survives ``kill -9``
  of the supervisor the next instruction;
* **replay on start**: :class:`~repro.service.cluster.ClusterService`
  and the single-process :class:`~repro.service.server.FloorService`
  rebuild their manifest/registry from the journal
  (:meth:`replay` + :meth:`manifest_from_ops`), reconstructing the
  exact pre-crash resolution order -- including newest-active-wins
  across hot-swaps.

Failure semantics are deliberately asymmetric: a torn *trailing*
record is truncated with a :class:`JournalWarning` (the operation was
never acknowledged, so dropping it is correct), while a bad checksum
or sequence gap *before* the tail raises a typed
:class:`~repro.errors.JournalError` -- replaying past mid-file
corruption could silently reconstruct a wrong manifest, which is the
one outcome this module exists to prevent.

Entry point: ``repro serve --state-dir DIR``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import warnings
from typing import IO

from repro.errors import JournalError
from repro.telemetry import get_telemetry

#: Journal file name inside the state directory.
JOURNAL_FILE = "control-plane.journal"

#: Hex digits of the per-record SHA-256 checksum prefix.
_CHECKSUM_HEX = 16

#: Operations the journal accepts (anything else is corruption).
_OPS = ("register", "retire")

#: Test-only fault hook (installed by :mod:`repro.chaos.inject`).
#: Called with the record about to be appended; returning
#: ``"disk_full"`` raises ``OSError(ENOSPC)`` before any byte is
#: written, returning ``"torn"`` writes a deliberately truncated line
#: and then raises -- the on-disk shape of a crash mid-append.
JOURNAL_FAULT_HOOK = None


class JournalWarning(UserWarning):
    """A torn trailing record was truncated during journal replay."""


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:_CHECKSUM_HEX]


def _encode(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return _checksum(payload).encode("ascii") + b" " + payload + b"\n"


def _decode(line: bytes) -> dict:
    """One journal line back into its record; raises ``ValueError``
    on any malformation (the caller decides torn-tail vs corruption)."""
    prefix, sep, payload = line.rstrip(b"\n").partition(b" ")
    if not sep or len(prefix) != _CHECKSUM_HEX:
        raise ValueError("missing checksum prefix")
    if prefix.decode("ascii", "replace") != _checksum(payload):
        raise ValueError("checksum mismatch")
    record = json.loads(payload.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    if record.get("op") not in _OPS:
        raise ValueError("unknown op {!r}".format(record.get("op")))
    for field in ("seq", "device", "version"):
        if field not in record:
            raise ValueError("record is missing {!r}".format(field))
    if record["op"] == "register" and "path" not in record:
        raise ValueError("register record is missing 'path'")
    return record


class StateJournal:
    """Append-only, checksummed JSONL journal of control-plane ops.

    Parameters
    ----------
    state_dir:
        Directory holding the journal (created if missing).  One
        journal per service instance; the file is
        ``<state_dir>/control-plane.journal``.

    Construction scans the existing file: a torn trailing record is
    truncated in place (with a :class:`JournalWarning`), mid-file
    corruption or a sequence gap raises
    :class:`~repro.errors.JournalError` and the service refuses to
    start rather than serve from a wrong manifest.
    """

    def __init__(self, state_dir: str):
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.path = os.path.join(self.state_dir, JOURNAL_FILE)
        self._ops: list[dict] = []
        self._next_seq = 1
        self._handle: IO[bytes] | None = None
        self._failed = False
        self._recover()

    # -- replay ------------------------------------------------------------
    def _recover(self) -> None:
        """Validate the on-disk journal; truncate a torn tail."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        valid_end = 0
        lines: list[bytes] = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # No terminator: bytes past the last complete line are
                # a torn append by definition.
                break
            lines.append(raw[offset : newline + 1])
            offset = newline + 1
        for index, line in enumerate(lines):
            try:
                record = _decode(line)
                if record["seq"] != self._next_seq:
                    raise ValueError(
                        "sequence gap: expected {}, found {}".format(
                            self._next_seq, record["seq"]
                        )
                    )
            except ValueError as exc:
                if index == len(lines) - 1 and offset >= len(raw):
                    # Malformed *final* line: a torn append.  Earlier
                    # malformed lines fall through to JournalError.
                    break
                raise JournalError(
                    "journal {} is corrupt at record {}: {} -- refusing "
                    "to reconstruct a manifest past corruption".format(
                        self.path, index + 1, exc
                    )
                ) from exc
            self._ops.append(record)
            self._next_seq += 1
            valid_end += len(line)
        if valid_end < len(raw):
            warnings.warn(
                "journal {}: truncating torn trailing record ({} bytes "
                "past the last valid op; it was never "
                "acknowledged)".format(self.path, len(raw) - valid_end),
                JournalWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            get_telemetry().counter("repro_journal_torn_truncated_total", 1)
        get_telemetry().counter(
            "repro_journal_replayed_ops_total", len(self._ops)
        )

    def replay(self) -> list[dict]:
        """Every validated operation, oldest first (copies)."""
        return [dict(record) for record in self._ops]

    def __len__(self) -> int:
        return len(self._ops)

    # -- append ------------------------------------------------------------
    def append(
        self, op: str, device: str, version: str, path: str | None = None
    ) -> dict:
        """Durably record one control-plane op; returns the record.

        The record is flushed *and fsynced* before this returns -- the
        caller may acknowledge the operation to its client knowing a
        crash cannot forget it.  ``OSError`` (e.g. disk full)
        propagates with nothing acknowledged; a torn write poisons the
        journal object (subsequent appends raise
        :class:`~repro.errors.JournalError`) because only a restart's
        recovery scan can truncate the partial record.
        """
        if self._failed:
            raise JournalError(
                "journal {} failed a previous append; restart the "
                "service to recover (replay truncates the torn "
                "record)".format(self.path)
            )
        if op not in _OPS:
            raise JournalError("unknown journal op {!r}".format(op))
        record: dict = {
            "seq": self._next_seq,
            "op": op,
            "device": str(device),
            "version": str(version),
        }
        if op == "register":
            if path is None:
                raise JournalError("register ops must carry a path")
            record["path"] = os.fspath(path)
        line = _encode(record)
        hook = JOURNAL_FAULT_HOOK
        if hook is not None:
            action = hook(record)
            if action == "disk_full":
                raise OSError(
                    errno.ENOSPC,
                    "[chaos] no space left on device: journal append",
                )
            if action == "torn":
                handle = self._open()
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                self._failed = True
                raise OSError(
                    errno.EIO, "[chaos] torn journal append (crash mid-write)"
                )
        handle = self._open()
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        self._ops.append(record)
        self._next_seq += 1
        get_telemetry().counter("repro_journal_appends_total", 1, op=op)
        return dict(record)

    def _open(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
            # Make the journal's *existence* durable too: fsync the
            # directory so a crash right after creation cannot lose
            # the (empty) file and with it the next append.
            fd = os.open(self.state_dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- manifest reconstruction -------------------------------------------
    @staticmethod
    def manifest_from_ops(ops: list[dict]) -> list[dict]:
        """Replay ops into a cluster-style registration manifest.

        Reproduces :class:`~repro.service.cluster.ClusterService`'s
        commit semantics exactly: a register drops any earlier entry
        for the same ``(device, version)`` and appends (so list order
        carries newest-active-wins), a retire flags the entry in
        place.  A retire of a never-registered key means the journal
        disagrees with the code that wrote it -- typed corruption.
        """
        manifest: list[dict] = []
        for record in ops:
            device, version = record["device"], record["version"]
            if record["op"] == "register":
                manifest = [
                    e
                    for e in manifest
                    if not (e["device"] == device and e["version"] == version)
                ]
                manifest.append(
                    {
                        "device": device,
                        "version": version,
                        "path": record["path"],
                        "retired": False,
                    }
                )
            else:
                entry = next(
                    (
                        e
                        for e in manifest
                        if e["device"] == device and e["version"] == version
                    ),
                    None,
                )
                if entry is None:
                    raise JournalError(
                        "journal retires {}@{} which it never "
                        "registered".format(device, version)
                    )
                entry["retired"] = True
        return manifest

    def __repr__(self) -> str:
        return "StateJournal({!r}, {} ops)".format(self.path, len(self._ops))
