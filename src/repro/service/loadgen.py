"""Deterministic load generator + equivalence checker for the service.

The service's contract is that micro-batching is invisible: decisions
served over HTTP under any concurrency/coalescing pattern are
bit-identical to an offline :class:`~repro.floor.engine.TestFloor`
pass over the same devices.  This module generates the traffic *and*
proves the contract on every run:

1. each :class:`TrafficPlan` materializes its device population from
   the per-instance seed tree
   (:func:`repro.runtime.simulation.generate_instance_batches` --
   concatenation is bit-identical at any batch size/worker count);
2. the population is split into client requests of seeded-random sizes
   and the plans' requests are interleaved (seeded shuffle), so mixed
   multi-artifact traffic hits the server in a reproducible order;
3. ``n_clients`` keep-alive connections replay the requests
   concurrently (concurrency shapes the coalescing, never a
   decision), retrying on 429 backpressure, on 503 shard-respawn
   windows, and on dropped/refused connections (a cluster worker dying
   mid-plan) -- a killed worker costs retries, never the plan;
4. every plan's served decisions *and* served bins are reassembled by
   device index and compared against an offline floor run over the
   same rows.

Against a :class:`~repro.service.cluster.ClusterService` the generator
is a *distributed* load generator: responses carry an
``X-Repro-Worker`` header, and the report buckets latency and request
counts per worker (:meth:`LoadReport.per_worker_summary`) alongside
the aggregate percentiles.

The traffic *content* is deterministic given the seeds; wall-clock
figures of course are not.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np

from repro.errors import ServiceError
from repro.floor.engine import TestFloor
from repro.runtime.simulation import generate_instance_batches
from repro.telemetry import get_telemetry
from repro.tester.program import RETEST_FULL

#: Default concurrent client connections.
DEFAULT_CLIENTS = 4
#: Default largest devices-per-request chunk.
DEFAULT_MAX_CHUNK = 16
#: Base seconds of the first retry backoff step.
BACKOFF_SECONDS = 0.02
#: Backoff multiplier per consecutive retry of one request.
BACKOFF_FACTOR = 2.0
#: Ceiling on a single computed backoff sleep (a server-sent
#: ``Retry-After`` may still floor the sleep above this).
BACKOFF_CAP = 0.25
#: Give up on one request after this many retry rounds (429 + 503 +
#: connection failures combined).
MAX_RETRIES = 500


class RetryBackoff:
    """Seeded, jittered exponential backoff for one client connection.

    Each retry of a request sleeps ``base * factor**attempt`` capped at
    ``cap``, scaled by a jitter factor in ``[0.75, 1.25)`` drawn from
    the client's own seeded generator -- concurrent clients retrying
    the same respawn window desynchronize instead of stampeding, yet
    every client's delay sequence is an exact replay of its seed (the
    same determinism discipline as the traffic itself).  A server-sent
    ``Retry-After`` (429 backpressure, 503 respawn windows) floors the
    sleep: the server's explicit schedule outranks the local guess.

    Every produced delay is recorded on :attr:`delays` so a load run
    can report its realized backoff and tests can assert replayability.
    """

    def __init__(
        self,
        seed_seq=None,
        base: float = BACKOFF_SECONDS,
        factor: float = BACKOFF_FACTOR,
        cap: float = BACKOFF_CAP,
    ):
        self._rng = np.random.default_rng(seed_seq)
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.delays: list[float] = []

    def next_delay(self, attempt: int, retry_after: float | None = None) -> float:
        delay = min(self.cap, self.base * self.factor ** int(attempt))
        delay *= 0.75 + 0.5 * float(self._rng.random())
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        self.delays.append(delay)
        return delay


def parse_retry_after(headers: dict) -> float | None:
    """``Retry-After`` seconds from lower-cased response headers.

    ``None`` when absent or malformed -- a bad header must degrade to
    the local backoff guess, never break the retry loop.
    """
    raw = headers.get("retry-after", "").strip()
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


@dataclass
class TrafficPlan:
    """One device type's share of the generated traffic."""

    #: Registry device key the requests are addressed to.
    device: str
    #: Device under test that simulates the population.
    dut: object
    #: Devices to stream.
    n_devices: int
    #: Master seed of the population's per-instance seed tree.
    seed: int
    #: Optional pinned artifact version (``None`` = newest active).
    version: str | None = None
    #: Offline reference floor; when set, :func:`run_load` checks the
    #: served decisions of this plan against it.
    reference: TestFloor | None = None


@dataclass
class PlanOutcome:
    """Served-vs-offline outcome for one plan."""

    device: str
    n_devices: int
    n_requests: int
    n_retried: int
    #: Served decisions, reassembled in device order.
    decisions: np.ndarray
    #: Served bin names, reassembled in device order (``None`` when
    #: the server predates the binning layer).
    bins: object = None
    #: ``None`` when the plan carried no reference floor; ``True``
    #: requires served decisions *and* served bins to match the
    #: offline floor device for device.
    equivalent: bool | None = None

    def summary(self) -> str:
        verdict = {
            True: "bit-identical to offline floor",
            False: "MISMATCH vs offline floor",
            None: "not checked",
        }[self.equivalent]
        return "{}: {} devices in {} requests ({} retried)  {}".format(
            self.device, self.n_devices, self.n_requests, self.n_retried, verdict
        )


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    plans: list[PlanOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    n_clients: int = 0
    #: Per-request round-trip seconds (successful attempts only; the
    #: backoff sleeps of retried requests are excluded).  Collection
    #: order is whatever the clients interleaved to -- percentiles are
    #: order-independent, and capture never touches the decision
    #: arrays, so served≡offline bit-identity is unaffected.
    latencies_s: np.ndarray | None = None
    #: Worker label (``X-Repro-Worker``) -> that worker's share of
    #: ``latencies_s``.  Empty for single-process servers, which send
    #: no worker header.
    worker_latencies: dict = field(default_factory=dict)
    #: Every backoff sleep (seconds) the run's clients performed,
    #: concatenated per client in client order -- the realized retry
    #: schedule (deterministic per client given the run seed).
    retry_delays: np.ndarray | None = None

    @property
    def n_devices(self) -> int:
        return sum(plan.n_devices for plan in self.plans)

    @property
    def n_requests(self) -> int:
        return sum(plan.n_requests for plan in self.plans)

    @property
    def n_retried(self) -> int:
        return sum(plan.n_retried for plan in self.plans)

    @property
    def devices_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_devices * 60.0 / self.wall_seconds

    @property
    def sustained_rps(self) -> float:
        """Completed requests per second over the whole run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_requests / self.wall_seconds

    @property
    def equivalent(self) -> bool:
        """True when every checked plan matched its offline reference."""
        return all(plan.equivalent is not False for plan in self.plans)

    @staticmethod
    def _percentiles(latencies, wall_seconds: float, sustained_rps: float) -> dict:
        lat = np.asarray(latencies, dtype=float)
        p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
        return {
            "n_requests": int(lat.shape[0]),
            "p50_ms": round(float(p50) * 1e3, 4),
            "p95_ms": round(float(p95) * 1e3, 4),
            "p99_ms": round(float(p99) * 1e3, 4),
            "max_ms": round(float(lat.max()) * 1e3, 4),
            "mean_ms": round(float(lat.mean()) * 1e3, 4),
            "sustained_rps": round(sustained_rps, 3),
        }

    def latency_summary(self) -> dict:
        """p50/p95/p99/max/mean request latency (ms) + sustained RPS.

        The shape written into ``BENCH_service.json``; empty when no
        latencies were captured (zero requests).
        """
        if self.latencies_s is None or len(self.latencies_s) == 0:
            return {}
        return self._percentiles(self.latencies_s, self.wall_seconds,
                                 self.sustained_rps)

    def per_worker_summary(self) -> dict:
        """Worker label -> that worker's latency percentiles + RPS.

        Per-worker attribution for cluster runs: each worker's share
        of the requests (from the ``X-Repro-Worker`` response header),
        its own p50/p95/p99 and its sustained request rate over the
        run's wall clock.  Empty against a single-process server.
        """
        out = {}
        for label in sorted(self.worker_latencies):
            lat = self.worker_latencies[label]
            if len(lat) == 0:
                continue
            rps = len(lat) / self.wall_seconds if self.wall_seconds > 0 else 0.0
            out[label] = self._percentiles(lat, self.wall_seconds, rps)
        return out

    def summary(self) -> str:
        lines = [plan.summary() for plan in self.plans]
        lines.append(
            "total: {} devices / {} requests over {} client(s) in "
            "{:.2f}s  ({:,.0f} devices/min)".format(
                self.n_devices,
                self.n_requests,
                self.n_clients,
                self.wall_seconds,
                self.devices_per_minute,
            )
        )
        latency = self.latency_summary()
        if latency:
            lines.append(
                "latency: p50 {:.2f}ms  p95 {:.2f}ms  p99 {:.2f}ms  "
                "max {:.2f}ms  ({:,.1f} req/s sustained)".format(
                    latency["p50_ms"],
                    latency["p95_ms"],
                    latency["p99_ms"],
                    latency["max_ms"],
                    latency["sustained_rps"],
                )
            )
        for label, entry in self.per_worker_summary().items():
            lines.append(
                "  {}: {} requests  p50 {:.2f}ms  p99 {:.2f}ms  "
                "({:,.1f} req/s)".format(
                    label,
                    entry["n_requests"],
                    entry["p50_ms"],
                    entry["p99_ms"],
                    entry["sustained_rps"],
                )
            )
        return "\n".join(lines)


class HttpClient:
    """Minimal keep-alive HTTP/1.1 JSON client (stdlib asyncio).

    Safe for concurrent use: round trips on the single connection are
    serialized by an internal lock (HTTP/1.1 cannot interleave
    request/response pairs on one socket).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        #: Response headers of the most recent round trip (lower-cased
        #: names) -- lets callers read ``X-Request-Id`` echoes without
        #: changing the ``(status, body)`` return shape.
        self.last_headers: dict[str, str] = {}

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """One round trip; reconnects once on a dropped keep-alive.

        ``payload`` may be a dict (JSON-encoded here) or raw ``bytes``
        forwarded verbatim -- the cluster router proxies request bodies
        without re-serializing them.
        """
        async with self._lock:
            for attempt in (0, 1):
                if self._writer is None:
                    await self._connect()
                try:
                    return await self._round_trip(method, path, payload, headers)
                except (ConnectionError, asyncio.IncompleteReadError):
                    await self._close_connection()
                    if attempt:
                        raise
            raise AssertionError("unreachable")

    async def _round_trip(self, method, path, payload, headers=None):
        assert self._reader is not None and self._writer is not None
        if isinstance(payload, bytes):
            body = payload
        else:
            body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        extra = "".join(
            "{}: {}\r\n".format(name, value)
            for name, value in (headers or {}).items()
            if value
        )
        head = (
            "{} {} HTTP/1.1\r\n"
            "Host: {}:{}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: {}\r\n"
            "{}"
            "Connection: keep-alive\r\n\r\n"
        ).format(method, path, self.host, self.port, len(body), extra)
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        reply_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            reply_headers[name.strip().lower()] = value.strip()
        length = int(reply_headers.get("content-length", 0) or 0)
        self.last_headers = reply_headers
        reply = await self._reader.readexactly(length) if length else b""
        if reply_headers.get("content-type", "").startswith("application/json"):
            return status, (json.loads(reply) if reply else {})
        return status, {"text": reply.decode("utf-8", "replace")}

    async def _close_connection(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
        self._reader = self._writer = None

    async def close(self) -> None:
        async with self._lock:
            await self._close_connection()


def split_url(url: str) -> tuple[str, int]:
    """``http://host:port`` -> ``(host, port)``."""
    parts = urlsplit(url if "//" in url else "//" + url)
    host, port = parts.hostname, parts.port
    if not host or not port:
        raise ServiceError(
            "service URL must name a host and port, e.g. "
            "http://127.0.0.1:8731; got {!r}".format(url)
        )
    return host, port


def materialize_population(plan: TrafficPlan, batch_size: int = 1024):
    """The plan's full device population, in seed-tree order."""
    return np.vstack(
        list(
            generate_instance_batches(
                plan.dut,
                plan.n_devices,
                plan.seed,
                batch_size=min(batch_size, plan.n_devices),
            )
        )
    )


def build_requests(
    plans: list[TrafficPlan],
    max_chunk: int = DEFAULT_MAX_CHUNK,
    seed: int = 0,
) -> tuple[list[dict], dict[int, np.ndarray]]:
    """Deterministic request schedule over every plan's population.

    Returns ``(requests, populations)``: each request carries its plan
    index and the half-open device-index range it covers, and the
    interleaving across plans is a seeded shuffle -- the same inputs
    always produce the same traffic.
    """
    if max_chunk < 1:
        raise ServiceError("max_chunk must be positive")
    rng = np.random.default_rng(seed)
    requests = []
    populations = {}
    for plan_index, plan in enumerate(plans):
        rows = materialize_population(plan)
        populations[plan_index] = rows
        start = 0
        while start < rows.shape[0]:
            size = int(rng.integers(1, max_chunk + 1))
            stop = min(start + size, rows.shape[0])
            requests.append(
                {
                    "plan": plan_index,
                    "start": start,
                    "stop": stop,
                }
            )
            start = stop
    order = rng.permutation(len(requests))
    return [requests[i] for i in order], populations


async def run_load(
    host: str,
    port: int,
    plans: list[TrafficPlan],
    n_clients: int = DEFAULT_CLIENTS,
    max_chunk: int = DEFAULT_MAX_CHUNK,
    seed: int = 0,
) -> LoadReport:
    """Replay mixed traffic against a running service and verify it.

    Transient failures are retried with seeded, jittered exponential
    backoff (:class:`RetryBackoff`; a server-sent ``Retry-After``
    floors the sleep): 429 backpressure, 503 shard-respawn windows,
    and refused/dropped connections (a cluster worker dying mid-plan
    is respawned by its supervisor; dispositions are pure per-device
    functions, so replaying the request against the respawned worker
    cannot change a decision).  Raises
    :class:`~repro.errors.ServiceError` when the server rejects a
    request for any other reason, or when one request exhausts
    ``MAX_RETRIES``.
    """
    plans = list(plans)
    if not plans:
        raise ServiceError("at least one traffic plan is required")
    requests, populations = build_requests(plans, max_chunk, seed)
    decisions = {
        index: np.zeros(populations[index].shape[0], dtype=int)
        for index in range(len(plans))
    }
    served_bins = {
        index: np.empty(populations[index].shape[0], dtype=object)
        for index in range(len(plans))
    }
    n_requests = [0] * len(plans)
    n_retried = [0] * len(plans)
    latencies: list[float] = []
    worker_latencies: dict[str, list] = {}
    tel = get_telemetry()
    queue: asyncio.Queue = asyncio.Queue()
    for request in requests:
        queue.put_nowait(request)
    # One independent backoff stream per client, spawned from the run
    # seed -- the retry schedule replays exactly, like the traffic.
    n_clients = max(1, int(n_clients))
    backoffs = [
        RetryBackoff(child)
        for child in np.random.SeedSequence(seed).spawn(n_clients)
    ]

    async def worker(client_index: int) -> None:
        backoff = backoffs[client_index]
        client = HttpClient(host, port)
        try:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                plan = plans[request["plan"]]
                rows = populations[request["plan"]]
                payload = {
                    "device": plan.device,
                    "measurements": rows[request["start"] : request["stop"]].tolist(),
                }
                if plan.version is not None:
                    payload["version"] = plan.version
                status, reply = 0, {}
                for attempt in range(MAX_RETRIES):
                    t0 = time.perf_counter()
                    try:
                        status, reply = await client.request(
                            "POST", "/disposition", payload
                        )
                    except (OSError, asyncio.IncompleteReadError) as exc:
                        # Connection refused or dropped mid-round-trip:
                        # a worker is down and respawning.  Back off
                        # and replay the (idempotent) request.
                        status, reply = 0, {"error": str(exc)}
                    if status not in (0, 429, 503):
                        # Latency of the served attempt only: retries
                        # measure backpressure/respawn, not request
                        # service.
                        latency = time.perf_counter() - t0
                        latencies.append(latency)
                        served_by = client.last_headers.get("x-repro-worker")
                        if served_by:
                            worker_latencies.setdefault(served_by, []).append(
                                latency
                            )
                        tel.observe("repro_loadgen_request_seconds", latency)
                        break
                    n_retried[request["plan"]] += 1
                    retry_after = (
                        parse_retry_after(client.last_headers)
                        if status in (429, 503)
                        else None
                    )
                    await asyncio.sleep(
                        backoff.next_delay(attempt, retry_after)
                    )
                if status != 200:
                    raise ServiceError(
                        "service replied {} to a disposition request: {}".format(
                            status or "no response (connection failures)",
                            reply.get("error", reply),
                        )
                    )
                decisions[request["plan"]][
                    request["start"] : request["stop"]
                ] = reply["decisions"]
                if reply.get("bins") is not None:
                    served_bins[request["plan"]][
                        request["start"] : request["stop"]
                    ] = reply["bins"]
                n_requests[request["plan"]] += 1
        finally:
            await client.close()

    started = time.perf_counter()
    with tel.span("loadgen.run", requests=len(requests), clients=n_clients):
        workers = [
            asyncio.ensure_future(worker(i)) for i in range(n_clients)
        ]
        try:
            await asyncio.gather(*workers)
        finally:
            for task in workers:
                task.cancel()
            # Await the cancelled workers so each finally block closes
            # its client connection before the loop winds down.
            await asyncio.gather(*workers, return_exceptions=True)
    wall = time.perf_counter() - started

    outcomes = []
    for index, plan in enumerate(plans):
        # Old servers reply without bins; distinguish "not served"
        # from "served" so the equivalence check knows what to hold.
        plan_bins = served_bins[index]
        if all(b is None for b in plan_bins):
            plan_bins = None
        equivalent = None
        if plan.reference is not None:
            offline = plan.reference.run_stream(
                [populations[index]], keep_decisions=True
            )
            equivalent = bool(np.array_equal(offline.decisions, decisions[index]))
            if equivalent and plan_bins is not None:
                offline_names = np.asarray(offline.bin_names, dtype=object)[
                    offline.bins
                ]
                equivalent = bool(np.array_equal(offline_names, plan_bins))
        outcomes.append(
            PlanOutcome(
                device=plan.device,
                n_devices=populations[index].shape[0],
                n_requests=n_requests[index],
                n_retried=n_retried[index],
                decisions=decisions[index],
                bins=plan_bins,
                equivalent=equivalent,
            )
        )
    return LoadReport(
        plans=outcomes,
        wall_seconds=wall,
        n_clients=n_clients,
        latencies_s=np.asarray(latencies, dtype=float),
        worker_latencies={
            label: np.asarray(values, dtype=float)
            for label, values in worker_latencies.items()
        },
        retry_delays=np.asarray(
            [delay for b in backoffs for delay in b.delays], dtype=float
        ),
    )


def offline_reference(artifact, retest_policy: str = RETEST_FULL) -> TestFloor:
    """The offline floor a plan's served decisions are checked against.

    Monitoring is disabled: the reference exists to reproduce
    *decisions*, and decisions never depend on the monitor.
    """
    return TestFloor(artifact, retest_policy=retest_policy, monitor=False)


async def wait_healthy(host: str, port: int, timeout: float = 10.0) -> dict:
    """Poll ``/health`` until the service answers (CI startup races)."""
    deadline = time.perf_counter() + timeout
    last: Exception | None = None
    while time.perf_counter() < deadline:
        client = HttpClient(host, port)
        try:
            status, reply = await client.request("GET", "/health")
            if status == 200:
                return reply
        except OSError as exc:
            last = exc
        finally:
            await client.close()
        await asyncio.sleep(0.05)
    raise ServiceError(
        "service at {}:{} did not become healthy within {:g}s{}".format(
            host, port, timeout, " ({})".format(last) if last else ""
        )
    )
