"""Multi-worker serving scale-out: supervisor, sharding router, fan-out.

:class:`~repro.service.server.FloorService` is a single asyncio
process -- one core's worth of floor throughput.  This module scales it
horizontally without giving up one bit of the served ≡ offline
invariant:

* a **supervisor** (:class:`ClusterService`) spawns ``n_workers``
  worker *processes*, each running its own :class:`FloorService` on an
  ephemeral loopback port, primed from the cluster's **registry
  manifest** (the ordered list of ``(device, version, path)``
  registrations that is the cluster's source of truth);
* a shared-nothing **router** (the supervisor's own HTTP front end)
  shards data-plane traffic by device-key hash --
  :func:`shard_for` is a pure, stable function of ``(device,
  n_workers)`` (SHA-256, no process-randomized ``hash()``), so the
  same device key always lands on the same worker across requests,
  connections and restarts, and no state is shared between workers;
* **control-plane fan-out**: ``POST /artifacts`` and ``POST
  /artifacts/retire`` are applied to *every* worker atomically -- the
  operation commits to the manifest only when all workers accepted it,
  and a partial failure rolls the already-updated workers back to the
  manifest state, so a hot-swap is visible on all workers or none;
* **self-healing**: a health loop probes each worker; a crashed or
  unresponsive worker is killed, respawned and re-primed from the
  manifest.  While a shard is down its requests are answered ``503``
  with ``Retry-After`` -- never misrouted to a different worker (that
  would silently change which floor's drift monitor sees the traffic).

Because a disposition is a pure per-device function of the artifact
and the measurements, sharding is invisible in the decisions: a
cluster at any worker count serves bit-identical decisions to a single
worker and to an offline :class:`~repro.floor.engine.TestFloor` pass
(`benchmarks/bench_cluster_throughput.py` asserts exactly this at
every configuration it measures).

Entry point: ``repro serve --workers N``.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro import __version__
from repro.errors import (
    ClusterDegradedError,
    DeadlineExceededError,
    JournalError,
    ReproError,
    ServiceError,
    UnknownArtifactError,
)
from repro.service.batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
)
from repro.service.durability import StateJournal
from repro.service.loadgen import HttpClient, wait_healthy
from repro.service.registry import DEFAULT_MAX_RESIDENT
from repro.service.server import (
    DEADLINE_HEADER,
    _json_body,
    _query_param,
    _read_request,
    _required,
    _write_response,
    apply_response_fault,
    authorized_admin,
    parse_deadline,
)
from repro.telemetry import Telemetry, get_telemetry, prometheus_text
from repro.tester.program import RETEST_FULL, check_retest_policy

#: Seconds between health probes of each worker.
DEFAULT_HEALTH_INTERVAL = 0.5
#: Seconds a worker gets to report its port and pass its first health
#: check (covers the interpreter + numpy import cost of a spawn).
DEFAULT_SPAWN_TIMEOUT = 60.0
#: Seconds a health probe may take before the worker is declared dead.
PROBE_TIMEOUT = 5.0
#: Seconds a proxied control-plane call may take (artifact loads).
CONTROL_TIMEOUT = 60.0
#: Spawn attempts per worker before the supervisor gives up (covers
#: transient startup failures: an ephemeral-port bind race, a worker
#: killed mid-handshake; each retry gets a fresh ephemeral port).
SPAWN_ATTEMPTS = 3

#: Test-only fault hook (installed by :mod:`repro.chaos.inject`;
#: ``None`` in production).  Consulted just before the router writes a
#: ``/disposition`` response -- see
#: :data:`repro.service.server.RESPONSE_FAULT_HOOK` for semantics.
RESPONSE_FAULT_HOOK = None


def shard_for(device: str, n_workers: int) -> int:
    """The worker index serving a device key -- pure and stable.

    SHA-256 of the UTF-8 key, not Python's ``hash()`` (which is
    randomized per process): the mapping is identical across router
    restarts, worker respawns and unrelated registrations, so a
    device's traffic always reaches the same shard (and therefore the
    same drift monitor) for a fixed worker count.
    """
    if n_workers < 1:
        raise ServiceError("n_workers must be at least 1")
    digest = hashlib.sha256(str(device).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_workers


def _worker_main(index, conn, manifest, host, service_kwargs):
    """Worker process entry point (spawn target; must be importable).

    Builds a registry from the manifest snapshot, starts a
    :class:`FloorService` on an ephemeral loopback port, reports
    ``("ok", port)`` (or ``("error", message)``) through the pipe, then
    serves until killed.  Priming happens *before* the port is
    reported, so the router never routes to a half-primed worker.
    """
    import asyncio

    from repro.service.registry import ArtifactRegistry
    from repro.service.server import FloorService

    async def main():
        try:
            # Deterministic startup faults (tests only; the env var is
            # never set in production).  Imported lazily so the chaos
            # package stays off the production spawn path.
            if os.environ.get("REPRO_CHAOS_STARTUP"):
                from repro.chaos.inject import worker_startup_fault

                mode = worker_startup_fault(index)
                if mode == "handshake_death":
                    # Die before the pipe handshake, the shape of a
                    # worker crashing during interpreter startup.
                    os._exit(1)
                if mode == "bind_fail":
                    raise OSError(
                        98, "[chaos] address already in use: worker bind"
                    )
            registry = ArtifactRegistry(max_resident=service_kwargs.pop("max_resident"))
            for entry in manifest:
                registry.register(entry["device"], entry["version"], entry["path"])
                if entry["retired"]:
                    registry.retire(entry["device"], entry["version"])
            service = FloorService(
                registry, worker_label="w{}".format(index), **service_kwargs
            )
            await service.start(host, 0)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            conn.send(("error", "{}: {}".format(type(exc).__name__, exc)))
            conn.close()
            return
        conn.send(("ok", service.port))
        conn.close()
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass


@dataclass
class WorkerHandle:
    """Supervisor-side state for one worker process."""

    index: int
    process: object = None
    port: int = 0
    #: False while the shard is draining/respawning -- its requests are
    #: answered 503 instead of being misrouted.
    healthy: bool = False
    #: Times this shard has been respawned (observability).
    respawns: int = 0
    #: Bumped on every (re)spawn so routers drop stale connections.
    generation: int = 0

    @property
    def label(self) -> str:
        return "w{}".format(self.index)

    def describe(self) -> dict:
        pid = getattr(self.process, "pid", None)
        return {
            "port": self.port,
            "pid": pid,
            "healthy": self.healthy,
            "respawns": self.respawns,
        }


class ClusterService:
    """N worker processes behind a device-hash sharding router.

    Parameters
    ----------
    registrations:
        Iterable of ``(device, version, path)`` artifact registrations
        applied to every worker at spawn (the initial manifest).  Only
        file paths are accepted -- each worker loads the artifact from
        its own disk through the restricted loader, exactly as a
        single :class:`FloorService` would.
    n_workers:
        Worker processes to spawn (>= 1).
    retest_policy, max_batch_size, max_latency, max_pending,
    max_resident:
        Forwarded to every worker's :class:`FloorService` /
        :class:`ArtifactRegistry`.
    admin_token:
        Control-plane shared secret, enforced *at the router* (workers
        only ever see loopback traffic from the router itself).
    health_interval:
        Seconds between worker health probes.
    telemetry:
        Router-side registry (spans, per-worker gauges, request
        histograms); defaults like :class:`FloorService`.
    state_dir:
        Directory for the control-plane write-ahead journal (``repro
        serve --state-dir``).  When set, the manifest is rebuilt from
        the journal at construction (so a supervisor ``kill -9``
        forgets nothing that was acked) and every subsequent
        register/retire is journaled -- fsync before the fan-out
        commits -- before it is acknowledged.  Constructor
        ``registrations`` whose ``(device, version)`` the journal
        already knows are skipped: the journal, which saw every
        hot-swap, outranks the restart command line.
    """

    def __init__(
        self,
        registrations=(),
        n_workers: int = 2,
        retest_policy: str = RETEST_FULL,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_resident: int = DEFAULT_MAX_RESIDENT,
        admin_token: str | None = None,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        telemetry: Telemetry | None = None,
        state_dir: str | None = None,
    ):
        check_retest_policy(retest_policy)
        if n_workers < 1:
            raise ServiceError("n_workers must be at least 1")
        #: Ordered registration manifest -- the cluster's source of
        #: truth.  Workers are primed from it at every (re)spawn, and
        #: control-plane operations commit to it only after every
        #: worker accepted them.  Order carries hot-swap resolution:
        #: replaying the list reproduces newest-active-wins.
        self._manifest: list[dict] = []
        #: Control-plane write-ahead journal (``None`` = memory-only).
        self.journal: StateJournal | None = None
        if state_dir is not None:
            self.journal = StateJournal(state_dir)
            self._manifest = StateJournal.manifest_from_ops(
                self.journal.replay()
            )
        known = {(e["device"], e["version"]) for e in self._manifest}
        for device, version, path in registrations:
            key = (str(device), str(version))
            if key in known:
                # The journal already saw this key (and possibly later
                # hot-swaps of it); the restart command line must not
                # reorder history.
                continue
            self._manifest.append(
                {
                    "device": key[0],
                    "version": key[1],
                    "path": os.fspath(path),
                    "retired": False,
                }
            )
            known.add(key)
            self._journal_append(
                "register", key[0], key[1], path=os.fspath(path)
            )
        self.n_workers = int(n_workers)
        self.admin_token = admin_token or None
        self.health_interval = float(health_interval)
        self.spawn_timeout = float(spawn_timeout)
        self._worker_kwargs = {
            "retest_policy": retest_policy,
            "max_batch_size": int(max_batch_size),
            "max_latency": float(max_latency),
            "max_pending": int(max_pending),
            "max_resident": int(max_resident),
        }
        self._workers: list[WorkerHandle] = [
            WorkerHandle(index=i) for i in range(self.n_workers)
        ]
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._health_task: asyncio.Task | None = None
        #: Serializes control-plane fan-out with worker respawns, so a
        #: respawned worker is always primed from a settled manifest.
        self._control_lock = asyncio.Lock()
        self._ctx = multiprocessing.get_context("spawn")
        self._started_unix = time.time()
        self.n_http_requests = 0
        if telemetry is None:
            active = get_telemetry()
            telemetry = active if active.enabled else Telemetry()
        self.telemetry = telemetry

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ClusterService":
        """Spawn every worker, then bind the router (``port=0`` = ephemeral)."""
        if self._server is not None:
            raise ServiceError("cluster is already started")
        try:
            await asyncio.gather(*(self._spawn(worker) for worker in self._workers))
        except Exception:
            await self._shutdown_workers()
            raise
        self._server = await asyncio.start_server(self._handle, host, port)
        self._started_unix = time.time()
        self._health_task = asyncio.ensure_future(self._health_loop())
        return self

    @property
    def port(self) -> int:
        """The router's bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("cluster is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def worker_ports(self) -> tuple[int, ...]:
        """Each worker's loopback port, by shard index."""
        return tuple(worker.port for worker in self._workers)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("cluster is not started")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop the router, then terminate every worker process."""
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._shutdown_workers()

    async def _shutdown_workers(self) -> None:
        for worker in self._workers:
            worker.healthy = False
            process = worker.process
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            for _ in range(100):
                if not process.is_alive():
                    break
                await asyncio.sleep(0.02)
            else:
                process.kill()
            process.join(timeout=5)
            worker.process = None

    # -- worker supervision ------------------------------------------------
    async def _spawn(self, worker: WorkerHandle) -> None:
        """Start one worker, retrying transient startup failures.

        Each attempt is a fresh process asking for a fresh ephemeral
        port, so a bind race or a crash during the pipe handshake is
        survived by simply trying again; a deterministic failure (bad
        artifact path) still surfaces after :data:`SPAWN_ATTEMPTS`.
        """
        last_exc: Exception | None = None
        for attempt in range(SPAWN_ATTEMPTS):
            try:
                await self._spawn_once(worker)
                return
            except (ServiceError, OSError) as exc:
                last_exc = exc
                if attempt + 1 < SPAWN_ATTEMPTS:
                    self.telemetry.counter(
                        "repro_cluster_spawn_retries_total",
                        1,
                        worker=worker.label,
                    )
        raise ServiceError(
            "worker {} failed to start after {} attempts: {}".format(
                worker.index, SPAWN_ATTEMPTS, last_exc
            )
        ) from last_exc

    async def _spawn_once(self, worker: WorkerHandle) -> None:
        """Start one worker process and wait until it serves."""
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker.index,
                child,
                [dict(entry) for entry in self._manifest],
                "127.0.0.1",
                dict(self._worker_kwargs),
            ),
            daemon=True,
        )
        process.start()
        child.close()
        try:
            verdict, value = await self._await_message(parent, process)
        finally:
            parent.close()
        if verdict != "ok":
            process.join(timeout=5)
            raise ServiceError(
                "worker {} failed to start: {}".format(worker.index, value)
            )
        await wait_healthy("127.0.0.1", value, timeout=self.spawn_timeout)
        worker.process = process
        worker.port = value
        worker.generation += 1
        worker.healthy = True

    async def _await_message(self, parent, process):
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if parent.poll():
                try:
                    return parent.recv()
                except EOFError:
                    # The worker died with the pipe open but nothing
                    # written: poll() wakes on the close, recv() hits
                    # EOF.  Type it so the spawn retry loop can treat
                    # it like any other startup crash.
                    raise ServiceError(
                        "worker process closed the handshake pipe "
                        "during startup (exit code {})".format(
                            process.exitcode
                        )
                    ) from None
            if not process.is_alive():
                raise ServiceError(
                    "worker process exited with code {} during "
                    "startup".format(process.exitcode)
                )
            await asyncio.sleep(0.02)
        process.kill()
        raise ServiceError(
            "worker did not report a port within {:g}s".format(self.spawn_timeout)
        )

    async def _respawn(self, worker: WorkerHandle) -> None:
        """Kill + respawn one worker, re-primed from the manifest."""
        async with self._control_lock:
            worker.healthy = False
            process = worker.process
            if process is not None:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5)
                worker.process = None
            await self._spawn(worker)
            worker.respawns += 1
            self.telemetry.counter(
                "repro_cluster_respawns_total", 1, worker=worker.label
            )

    async def _probe(self, worker: WorkerHandle) -> bool:
        client = HttpClient("127.0.0.1", worker.port)
        try:
            status, _ = await asyncio.wait_for(
                client.request("GET", "/health"), timeout=PROBE_TIMEOUT
            )
            return status == 200
        except (OSError, asyncio.TimeoutError):
            return False
        finally:
            await client.close()

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            for worker in self._workers:
                process = worker.process
                dead = process is None or not process.is_alive()
                if not dead and worker.healthy:
                    dead = not await self._probe(worker)
                if dead or not worker.healthy:
                    worker.healthy = False
                    try:
                        await self._respawn(worker)
                    except (ReproError, OSError):
                        # Spawn failed (e.g. an artifact file vanished
                        # from disk); the shard stays 503 and the next
                        # tick retries.
                        pass
                self.telemetry.gauge(
                    "repro_cluster_worker_up",
                    1.0 if worker.healthy else 0.0,
                    worker=worker.label,
                )

    # -- data plane --------------------------------------------------------
    def worker_for(self, device: str) -> WorkerHandle:
        """The shard handle a device key routes to."""
        return self._workers[shard_for(device, self.n_workers)]

    # -- control plane (atomic fan-out) ------------------------------------
    async def _post_worker(
        self, worker: WorkerHandle, path: str, payload: dict
    ) -> tuple[int, dict]:
        """One control-plane POST to one worker (fresh connection)."""
        client = HttpClient("127.0.0.1", worker.port)
        try:
            return await asyncio.wait_for(
                client.request("POST", path, payload), timeout=CONTROL_TIMEOUT
            )
        finally:
            await client.close()

    async def _get_worker(
        self, worker: WorkerHandle, path: str
    ) -> tuple[int, dict]:
        client = HttpClient("127.0.0.1", worker.port)
        try:
            return await asyncio.wait_for(
                client.request("GET", path), timeout=CONTROL_TIMEOUT
            )
        finally:
            await client.close()

    def _journal_append(
        self, op: str, device: str, version: str, path: str | None = None
    ) -> None:
        """Durably journal one op; OSError becomes a typed 507.

        No-op without a journal.  Called *after* every worker accepted
        the operation and *before* the manifest commits: a failed
        append leaves the manifest unchanged, so the caller's rollback
        restores the workers to exactly the durable state.
        """
        if self.journal is None:
            return
        try:
            self.journal.append(op, device, version, path=path)
        except OSError as exc:
            raise JournalError(
                "{} {}@{} is not durable (journal append failed: "
                "{})".format(op, device, version, exc)
            ) from exc

    def _require_full_strength(self) -> None:
        down = [w.label for w in self._workers if not w.healthy]
        if down:
            raise ClusterDegradedError(
                "control-plane operations need every worker up; {} "
                "respawning".format(", ".join(down))
            )

    async def _restore_device(self, worker: WorkerHandle, device: str) -> None:
        """Replay the manifest's entries for one device onto one worker.

        The rollback primitive: re-registering every entry in manifest
        order restores the worker's newest-active-wins resolution for
        the device to the last committed state.
        """
        for entry in self._manifest:
            if entry["device"] != device:
                continue
            await self._post_worker(
                worker,
                "/artifacts",
                {
                    "device": entry["device"],
                    "version": entry["version"],
                    "path": entry["path"],
                },
            )
            if entry["retired"]:
                await self._post_worker(
                    worker,
                    "/artifacts/retire",
                    {"device": entry["device"], "version": entry["version"]},
                )

    async def register_artifact(self, device: str, version: str, path: str) -> dict:
        """Register/hot-swap an artifact on every worker, atomically.

        Commits to the manifest only when all workers accepted the
        registration.  On a partial failure every already-updated
        worker is rolled back to the manifest state (a brand-new key is
        retired; a replayed manifest restores hot-swap order), so the
        swap is visible everywhere or nowhere.
        """
        device, version, path = str(device), str(version), os.fspath(path)
        async with self._control_lock:
            self._require_full_strength()
            had_entry = any(
                e["device"] == device and e["version"] == version
                for e in self._manifest
            )
            payload = {"device": device, "version": version, "path": path}
            done: list[WorkerHandle] = []
            first_reply: dict = {}
            try:
                for worker in self._workers:
                    status, reply = await self._post_worker(
                        worker, "/artifacts", payload
                    )
                    if status != 201:
                        raise ServiceError(
                            "worker {} refused the registration ({}): "
                            "{}".format(
                                worker.label, status, reply.get("error", reply)
                            )
                        )
                    done.append(worker)
                    if not first_reply:
                        first_reply = reply
                self._journal_append("register", device, version, path=path)
            except Exception as exc:
                for worker in done:
                    try:
                        if not had_entry:
                            await self._post_worker(
                                worker,
                                "/artifacts/retire",
                                {"device": device, "version": version},
                            )
                        await self._restore_device(worker, device)
                    except (ReproError, OSError, asyncio.IncompleteReadError):
                        # The worker cannot be rolled back over HTTP
                        # (it died too); force a respawn, which
                        # re-primes it from the committed manifest.
                        worker.healthy = False
                message = (
                    "register {}@{} rolled back ({} of {} workers had "
                    "applied it): {}".format(
                        device, version, len(done), self.n_workers, exc
                    )
                )
                if isinstance(exc, JournalError):
                    # Every worker accepted, but the op is not durable:
                    # surface 507 so the caller knows a crash would
                    # forget it (the workers were rolled back above).
                    raise JournalError(message) from exc
                raise ServiceError(message) from exc
            self._manifest = [
                e
                for e in self._manifest
                if not (e["device"] == device and e["version"] == version)
            ]
            self._manifest.append(
                {
                    "device": device,
                    "version": version,
                    "path": path,
                    "retired": False,
                }
            )
            return first_reply

    async def retire_artifact(self, device: str, version: str) -> dict:
        """Retire a version on every worker, atomically (with rollback)."""
        device, version = str(device), str(version)
        async with self._control_lock:
            self._require_full_strength()
            entry = next(
                (
                    e
                    for e in self._manifest
                    if e["device"] == device and e["version"] == version
                ),
                None,
            )
            if entry is None:
                raise UnknownArtifactError(
                    "unknown artifact {}@{}; registered: {}".format(
                        device,
                        version,
                        ", ".join(
                            "{}@{}".format(e["device"], e["version"])
                            for e in self._manifest
                        )
                        or "none",
                    )
                )
            payload = {"device": device, "version": version}
            done: list[WorkerHandle] = []
            first_reply: dict = {}
            try:
                for worker in self._workers:
                    status, reply = await self._post_worker(
                        worker, "/artifacts/retire", payload
                    )
                    if status != 200:
                        raise ServiceError(
                            "worker {} refused the retire ({}): {}".format(
                                worker.label, status, reply.get("error", reply)
                            )
                        )
                    done.append(worker)
                    if not first_reply:
                        first_reply = reply
                self._journal_append("retire", device, version)
            except Exception as exc:
                for worker in done:
                    try:
                        await self._restore_device(worker, device)
                    except (ReproError, OSError, asyncio.IncompleteReadError):
                        worker.healthy = False
                message = (
                    "retire {}@{} rolled back ({} of {} workers had "
                    "applied it): {}".format(
                        device, version, len(done), self.n_workers, exc
                    )
                )
                if isinstance(exc, JournalError):
                    raise JournalError(message) from exc
                raise ServiceError(message) from exc
            entry["retired"] = True
            return first_reply

    # -- observability -----------------------------------------------------
    def health(self) -> dict:
        n_healthy = sum(1 for w in self._workers if w.healthy)
        return {
            "status": "ok" if n_healthy == self.n_workers else "degraded",
            "version": __version__,
            "uptime_seconds": time.time() - self._started_unix,
            "n_workers": self.n_workers,
            "n_healthy": n_healthy,
            "n_artifacts": len(self._manifest),
            "n_http_requests": self.n_http_requests,
            "workers": {w.label: w.describe() for w in self._workers},
        }

    async def artifacts(self) -> dict:
        """Fanned-out registry listing with a cross-worker consistency bit.

        ``consistent`` is True when every healthy worker lists exactly
        the same ``(device, version, retired)`` registrations -- the
        observable form of the atomic-fan-out guarantee.
        """
        per_worker: dict[str, list] = {}
        listings: dict[str, set] = {}
        rows: list = []
        for worker in self._workers:
            if not worker.healthy:
                continue
            status, reply = await self._get_worker(worker, "/artifacts")
            if status != 200:
                raise ServiceError(
                    "worker {} refused the listing ({})".format(
                        worker.label, status
                    )
                )
            keys = sorted(
                "{}@{}{}".format(
                    row["device"],
                    row["version"],
                    " (retired)" if row["retired"] else "",
                )
                for row in reply["artifacts"]
            )
            per_worker[worker.label] = keys
            listings[worker.label] = frozenset(keys)
            if not rows:
                rows = reply["artifacts"]
        consistent = len(set(listings.values())) <= 1
        return {
            "artifacts": rows,
            "consistent": consistent,
            "n_workers": self.n_workers,
            "per_worker": per_worker,
        }

    async def metrics(self) -> dict:
        """Aggregated serving metrics with per-worker breakdown.

        Worker metrics are re-published into the router's telemetry
        registry under the same ``repro_service_*`` gauge names with a
        ``worker`` label, so one Prometheus scrape of the router sees
        the whole cluster.
        """
        workers_out: dict[str, dict] = {}
        total_devices = 0
        total_rejected = 0
        for worker in self._workers:
            self.telemetry.gauge(
                "repro_cluster_worker_up",
                1.0 if worker.healthy else 0.0,
                worker=worker.label,
            )
            if not worker.healthy:
                workers_out[worker.label] = {"healthy": False, "stale": True}
                self.telemetry.gauge(
                    "repro_cluster_worker_stale", 1.0, worker=worker.label
                )
                continue
            try:
                status, reply = await self._get_worker(worker, "/metrics")
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                # The worker died between the health check above and
                # the scrape (mid-scrape death): serve a partial
                # snapshot with this shard marked stale instead of
                # failing the whole scrape, and let the health loop
                # respawn it.
                worker.healthy = False
                workers_out[worker.label] = {"healthy": False, "stale": True}
                self.telemetry.gauge(
                    "repro_cluster_worker_stale", 1.0, worker=worker.label
                )
                continue
            if status != 200:
                workers_out[worker.label] = {"healthy": False, "stale": True}
                self.telemetry.gauge(
                    "repro_cluster_worker_stale", 1.0, worker=worker.label
                )
                continue
            reply["healthy"] = True
            reply["stale"] = False
            reply["respawns"] = worker.respawns
            workers_out[worker.label] = reply
            self.telemetry.gauge(
                "repro_cluster_worker_stale", 0.0, worker=worker.label
            )
            total_devices += reply.get("total_devices", 0)
            total_rejected += reply.get("total_rejected", 0)
            for label, entry in reply.get("artifacts", {}).items():
                self.telemetry.gauge(
                    "repro_service_devices_per_minute",
                    entry.get("devices_per_minute", 0.0),
                    artifact=label,
                    worker=worker.label,
                )
                self.telemetry.gauge(
                    "repro_service_queue_depth",
                    entry.get("queue_depth", 0),
                    artifact=label,
                    worker=worker.label,
                )
        return {
            "uptime_seconds": time.time() - self._started_unix,
            "n_http_requests": self.n_http_requests,
            "n_workers": self.n_workers,
            "total_devices": total_devices,
            "total_rejected": total_rejected,
            "workers": workers_out,
        }

    async def metrics_prometheus(self) -> str:
        await self.metrics()  # refresh the per-worker gauges
        return prometheus_text(self.telemetry)

    # -- HTTP router -------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        #: shard index -> (worker generation, backend client).  Owned by
        #: this front connection, so concurrent clients never serialize
        #: on a shared backend socket.
        backends: dict[int, tuple[int, HttpClient]] = {}
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ServiceError, ValueError) as exc:
                    await _write_response(writer, 400, {"error": str(exc)}, False)
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                self.n_http_requests += 1
                request_id = headers.get("x-request-id") or "req-{}".format(
                    self.n_http_requests
                )
                started = time.perf_counter()
                with self.telemetry.span(
                    "cluster.request",
                    method=method,
                    path=path,
                    request_id=request_id,
                ) as span:
                    status, payload, extra = await self._route(
                        method,
                        path,
                        headers,
                        body,
                        writer.get_extra_info("peername"),
                        query,
                        backends,
                    )
                    span.set(status=status)
                keep_alive = headers.get("connection", "").lower() != "close"
                hook = RESPONSE_FAULT_HOOK
                fault = hook("cluster", path) if hook is not None else None
                if fault is not None:
                    ended = await apply_response_fault(writer, fault)
                    if ended:
                        break
                await _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive,
                    extra_headers=(("X-Request-Id", request_id),) + tuple(extra),
                )
                self.telemetry.observe(
                    "repro_cluster_request_seconds",
                    time.perf_counter() - started,
                    path=path,
                )
                self.telemetry.counter(
                    "repro_cluster_requests_total",
                    1,
                    path=path,
                    status=str(status),
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for _, client in backends.values():
                await client.close()
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()

    def _backend(self, backends: dict, worker: WorkerHandle) -> HttpClient:
        """This connection's keep-alive client to a shard (respawn-aware)."""
        cached = backends.get(worker.index)
        if cached is not None and cached[0] == worker.generation:
            return cached[1]
        client = HttpClient("127.0.0.1", worker.port)
        backends[worker.index] = (worker.generation, client)
        if cached is not None:
            # Stale pre-respawn connection; close it in the background
            # so the current request is not held up.
            asyncio.ensure_future(cached[1].close())
        return client

    async def _route(
        self, method, path, headers, body, peer, query, backends
    ) -> tuple[int, object, tuple]:
        try:
            if (
                path in ("/artifacts", "/artifacts/retire")
                and method == "POST"
                and not authorized_admin(self.admin_token, headers, peer)
            ):
                return (
                    403,
                    {
                        "error": "control-plane calls from non-loopback "
                        "peers require a valid X-Admin-Token header"
                    },
                    (),
                )
            if path == "/disposition" and method == "POST":
                deadline = parse_deadline(headers)
                if deadline is not None and time.monotonic() >= deadline:
                    raise DeadlineExceededError(
                        "deadline budget expired at the router; re-issue "
                        "with a fresh X-Repro-Deadline-Ms"
                    )
                request = _json_body(body)
                device = _required(request, "device")
                worker = self.worker_for(device)
                if not worker.healthy:
                    raise ClusterDegradedError(
                        "shard {} for device {!r} is respawning; retry "
                        "shortly".format(worker.label, device)
                    )
                proxy_headers = {
                    "X-Request-Id": headers.get("x-request-id", "")
                }
                if deadline is not None:
                    # Forward the *remaining* budget, so the worker and
                    # its batcher see the clock the caller sees.
                    remaining_ms = (deadline - time.monotonic()) * 1000.0
                    if remaining_ms <= 0:
                        raise DeadlineExceededError(
                            "deadline budget expired at the router; "
                            "re-issue with a fresh X-Repro-Deadline-Ms"
                        )
                    proxy_headers[DEADLINE_HEADER] = "{:.3f}".format(
                        remaining_ms
                    )
                client = self._backend(backends, worker)
                try:
                    status, reply = await client.request(
                        "POST",
                        "/disposition",
                        body,
                        headers=proxy_headers,
                    )
                except (ConnectionError, asyncio.IncompleteReadError):
                    # The worker died between health probes: surface the
                    # respawn window, never reroute to another shard.
                    worker.healthy = False
                    raise ClusterDegradedError(
                        "shard {} for device {!r} went down mid-request; "
                        "retry shortly".format(worker.label, device)
                    ) from None
                served_by = client.last_headers.get("x-repro-worker", worker.label)
                return status, reply, (("X-Repro-Worker", served_by),)
            if path == "/artifacts" and method == "GET":
                return 200, await self.artifacts(), ()
            if path == "/artifacts" and method == "POST":
                request = _json_body(body)
                reply = await self.register_artifact(
                    _required(request, "device"),
                    _required(request, "version"),
                    _required(request, "path"),
                )
                reply["n_workers"] = self.n_workers
                return 201, reply, ()
            if path == "/artifacts/retire" and method == "POST":
                request = _json_body(body)
                reply = await self.retire_artifact(
                    _required(request, "device"), _required(request, "version")
                )
                reply["n_workers"] = self.n_workers
                return 200, reply, ()
            if path == "/health" and method == "GET":
                return 200, self.health(), ()
            if path == "/metrics" and method == "GET":
                wire_format = _query_param(query, "format") or "json"
                if wire_format == "prometheus":
                    return 200, await self.metrics_prometheus(), ()
                if wire_format != "json":
                    raise ServiceError(
                        "unknown metrics format {!r}; expected 'json' or "
                        "'prometheus'".format(wire_format)
                    )
                return 200, await self.metrics(), ()
            if path in (
                "/disposition",
                "/artifacts",
                "/artifacts/retire",
                "/health",
                "/metrics",
            ):
                return 405, {"error": "method {} not allowed".format(method)}, ()
            return 404, {"error": "unknown path {}".format(path)}, ()
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc)}, ()
        except JournalError as exc:
            return 507, {"error": str(exc)}, ()
        except ClusterDegradedError as exc:
            return 503, {"error": str(exc)}, ()
        except UnknownArtifactError as exc:
            return 404, {"error": str(exc)}, ()
        except (ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}, ()
        except Exception as exc:  # pragma: no cover - defensive surface
            return 500, {"error": "internal error: {}".format(exc)}, ()

    # -- fault injection (tests and benchmarks) ----------------------------
    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker process (the health loop will respawn it).

        Test/bench hook for exercising the drain → respawn → readmit
        path; never called in normal operation.
        """
        process = self._workers[index].process
        if process is not None and process.is_alive():
            process.kill()

    def __repr__(self) -> str:
        healthy = sum(1 for w in self._workers if w.healthy)
        return "ClusterService({}/{} workers up, {} registrations)".format(
            healthy, self.n_workers, len(self._manifest)
        )
