"""repro.service -- the async multi-artifact test-floor service.

PR 3 made the compacted test program a deployable artifact served by
one in-process :class:`~repro.floor.engine.TestFloor`.  This package
takes the floor out of the single-process, single-artifact world: an
asyncio service that dispositions concurrent traffic for many device
types and artifact versions at once, with micro-batching and explicit
backpressure.

``repro.service.registry``
    :class:`ArtifactRegistry` -- versioned ``(device, version)``
    artifact store: load through the restricted artifact loader,
    hot-swap by registering a newer version, retire, SHA-256
    checksum pinning, LRU-bounded resident set.
``repro.service.batcher``
    :class:`MicroBatcher` -- coalesces concurrent small requests into
    vectorized floor batches (size + latency flush triggers, bounded
    queue with 429-style rejection); decisions stay bit-identical to
    direct :class:`TestFloor` runs at any coalescing pattern.
``repro.service.server``
    :class:`FloorService` -- stdlib-asyncio HTTP/JSON front end:
    ``/disposition``, ``/artifacts`` (+ register/retire),
    ``/health``, ``/metrics`` (throughput, queue depth, drift state).
``repro.service.loadgen``
    :class:`TrafficPlan` / :func:`run_load` -- deterministic seed-tree
    load generator that replays mixed multi-device traffic and
    asserts served decisions equal an offline floor pass; against a
    cluster it attributes latency per worker and retries through
    shard-respawn windows.
``repro.service.cluster``
    :class:`ClusterService` -- horizontal scale-out: N worker
    processes each running a :class:`FloorService`, fronted by a
    device-hash sharding router (:func:`shard_for`), with the control
    plane fanned out to every worker atomically and crashed workers
    respawned from the registry manifest.  Decisions are bit-identical
    at any worker count.
``repro.service.durability``
    :class:`StateJournal` -- append-only, checksummed write-ahead
    journal of control-plane operations (``repro serve --state-dir``):
    register/hot-swap/retire are fsync'd before they are acknowledged,
    and both service tiers replay the journal at startup, so a
    ``kill -9`` of the supervisor forgets nothing it ever acked.

CLI surface: ``repro serve`` (host a registry of artifacts;
``--workers N`` scales out, ``--state-dir`` makes the control plane
crash-safe) and ``repro loadgen`` (drive + verify a running service).
"""

from repro.service.batcher import (
    BatcherStats,
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    MicroBatcher,
)
from repro.service.cluster import ClusterService, WorkerHandle, shard_for
from repro.service.durability import JournalWarning, StateJournal
from repro.service.loadgen import (
    HttpClient,
    LoadReport,
    PlanOutcome,
    RetryBackoff,
    TrafficPlan,
    offline_reference,
    run_load,
    split_url,
    wait_healthy,
)
from repro.service.registry import (
    ArtifactRegistry,
    RegistryEntry,
    file_checksum,
)
from repro.service.server import FloorService

__all__ = [
    "ArtifactRegistry",
    "BatcherStats",
    "ClusterService",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_LATENCY",
    "DEFAULT_MAX_PENDING",
    "FloorService",
    "HttpClient",
    "JournalWarning",
    "LoadReport",
    "MicroBatcher",
    "PlanOutcome",
    "RegistryEntry",
    "RetryBackoff",
    "StateJournal",
    "TrafficPlan",
    "WorkerHandle",
    "file_checksum",
    "offline_reference",
    "run_load",
    "shard_for",
    "split_url",
    "wait_healthy",
]
