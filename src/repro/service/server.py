"""Asyncio HTTP/JSON front end for the multi-artifact test floor.

:class:`FloorService` binds an :class:`~repro.service.registry.
ArtifactRegistry` full of deployed test programs to a socket and
serves concurrent disposition traffic through per-artifact
:class:`~repro.service.batcher.MicroBatcher` queues.  Pure stdlib: the
HTTP layer is a minimal HTTP/1.1 implementation over
``asyncio.start_server`` (keep-alive, ``Content-Length`` bodies), so
the service runs anywhere the package does -- no web framework
required (drop-in replacement with ``aiohttp`` is possible but not
needed).

Endpoints
---------

``POST /disposition``
    ``{"device": ..., "version"?: ..., "measurements": [[...], ...]}``
    -- full-specification rows, one per device.  Replies with the
    per-device ``decisions`` (+1 ship / -1 scrap), the request's
    quality counts and the resolved artifact key, plus the per-device
    ``bins`` (tolerance-profile bin names; binary programs serve the
    degenerate PASS/FAIL pair) and the request's ``bin_counts``
    histogram.  Queue-full replies are ``429`` with a ``Retry-After``
    header -- explicit backpressure instead of unbounded buffering.
``GET /artifacts``
    Registry listing (versions, checksums, residency, retirement).
``POST /artifacts``
    ``{"device": ..., "version": ..., "path": ...}`` -- register or
    hot-swap an artifact file (loaded through the restricted loader).
``POST /artifacts/retire``
    ``{"device": ..., "version": ...}`` -- take a version out of
    rotation.

The two ``POST /artifacts*`` endpoints are the **control plane**: they
make the server read files off its own disk and change which programs
disposition production devices.  They are only honoured from loopback
peers unless the service was constructed with an ``admin_token``, in
which case remote callers must present it in an ``X-Admin-Token``
header (compared in constant time).  A non-loopback bind without a
token keeps serving dispositions but refuses remote control-plane
calls with ``403``.
``GET /health``
    Liveness plus uptime and registration count.
``GET /metrics``
    Per-artifact throughput, realized coalescing, queue depth, served
    bin histograms and the drift-monitor state (devices seen, active
    alarms).  ``?format=prometheus`` serves the same state as
    Prometheus text exposition v0.0.4 (drift gauges, request-latency
    histograms) from the service's telemetry registry.  Snapshot
    assembly is cached and invalidated per flush / registry change, so
    a scrape never rebuilds per-artifact state inside the event loop.

Every response carries an ``X-Request-Id`` header -- echoed from the
request when the client sent one, generated otherwise -- and the same
ID is attached to the request's telemetry span.

Decisions served here are bit-identical to an offline
:class:`~repro.floor.engine.TestFloor` pass over the same devices at
any coalescing pattern (`repro loadgen` asserts it end to end).
"""

from __future__ import annotations

import asyncio
import hmac
import ipaddress
import json
import os
import time
from collections import OrderedDict

import numpy as np

from repro import __version__
from repro.errors import (
    DeadlineExceededError,
    JournalError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    UnknownArtifactError,
)
from repro.floor.engine import TestFloor
from repro.service.batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    MicroBatcher,
)
from repro.service.durability import StateJournal
from repro.service.registry import ArtifactRegistry
from repro.telemetry import Telemetry, get_telemetry, prometheus_text
from repro.tester.program import RETEST_FULL, check_retest_policy

#: Largest accepted request body (64 MiB of JSON measurements).
MAX_BODY_BYTES = 64 << 20
#: Most header lines accepted per request (each is also line-limited
#: by the StreamReader, so total header memory is bounded).
MAX_HEADER_LINES = 100

#: Request header carrying the caller's remaining deadline budget in
#: milliseconds.  Honored at every tier (router -> worker -> batcher):
#: an expired budget answers 504 *before* any floor work runs.
DEADLINE_HEADER = "x-repro-deadline-ms"

#: Test-only fault hook (installed by :mod:`repro.chaos.inject`;
#: ``None`` in production).  Consulted just before a ``/disposition``
#: response is written: ``("delay", s)`` sleeps, ``("drop", _)``
#: closes the connection unanswered, ``("reset", _)`` aborts the
#: transport.  Post-decision only -- a retried request replays to a
#: bit-identical decision because dispositions are pure.
RESPONSE_FAULT_HOOK = None


class FloorService:
    """Serve many test-program artifacts over HTTP/JSON.

    Parameters
    ----------
    registry:
        The artifact registry; may start empty (artifacts can be
        registered over HTTP).
    retest_policy:
        Guard-band policy applied by every served floor.
    max_batch_size, max_latency, max_pending:
        Micro-batching knobs, applied per artifact queue (see
        :class:`~repro.service.batcher.MicroBatcher`).
    admin_token:
        Shared secret for remote control-plane calls.  Without it,
        ``POST /artifacts`` and ``POST /artifacts/retire`` are honoured
        only from loopback peers.
    worker_label:
        Identity of this process inside a
        :class:`~repro.service.cluster.ClusterService` (``"w0"``,
        ``"w1"``, ...).  When set, every response carries it in an
        ``X-Repro-Worker`` header and every service gauge/counter in
        the telemetry registry gets a ``worker`` label, so per-worker
        attribution survives aggregation at the cluster router.
        ``None`` (the default) is the single-process deployment: no
        header, no extra label.
    telemetry:
        The :class:`~repro.telemetry.Telemetry` registry behind
        ``/metrics?format=prometheus`` and the request spans.  Default:
        the process's active registry when one is configured (``repro
        serve --telemetry``), else a private always-on registry so the
        Prometheus endpoint works out of the box.
    state_dir:
        Directory for the control-plane write-ahead journal
        (``repro serve --state-dir``).  When set, register/retire
        operations are journaled (fsync before ack) and replayed into
        the registry at construction, so a crash + restart
        reconstructs the exact pre-crash registration state.  ``None``
        (the default) keeps the registry memory-only.
    """

    def __init__(
        self,
        registry: ArtifactRegistry | None = None,
        retest_policy: str = RETEST_FULL,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        admin_token: str | None = None,
        worker_label: str | None = None,
        telemetry: Telemetry | None = None,
        state_dir: str | None = None,
    ):
        check_retest_policy(retest_policy)
        self.registry = registry if registry is not None else ArtifactRegistry()
        self.retest_policy = retest_policy
        # An empty token (e.g. an unset shell variable reaching
        # --admin-token) must fall back to loopback-only, never to
        # token auth with an empty secret.
        self.admin_token = admin_token or None
        self.worker_label = worker_label or None
        #: Extra telemetry labels on every service metric ({} when not
        #: part of a cluster, so single-process series names are
        #: unchanged).
        self._worker_labels = (
            {"worker": self.worker_label} if self.worker_label else {}
        )
        self.max_batch_size = int(max_batch_size)
        self.max_latency = float(max_latency)
        self.max_pending = int(max_pending)
        #: key -> (registration sequence, batcher), warmest last.
        #: Keyed off the registry *sequence*, not artifact object
        #: identity: the registry LRU may reload a file-backed
        #: artifact at any time without that being a hot-swap, and an
        #: active batcher must keep its floor (stats, drift-monitor
        #: window) across such reloads.  The batcher set itself is
        #: LRU-bounded by the registry's ``max_resident`` so the
        #: registry bound is a real memory bound: serving the
        #: coldest key's floor is dropped (flushed first; its stats
        #: and drift window restart if the key warms up again).
        self._batchers: OrderedDict[tuple[str, str], tuple[int, MicroBatcher]] = (
            OrderedDict()
        )
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._started_unix = time.time()
        self.n_http_requests = 0
        if telemetry is None:
            active = get_telemetry()
            telemetry = active if active.enabled else Telemetry()
        self.telemetry = telemetry
        # Cached /metrics snapshot: (version it was built at, payload).
        # Flushes and registry changes bump _metrics_version; scrapes
        # rebuild only when the version moved, so snapshot assembly
        # stays off the request path.
        self._metrics_version = 0
        self._metrics_cache: tuple[int, dict] | None = None
        #: Control-plane write-ahead journal (``None`` = memory-only).
        self.journal: StateJournal | None = None
        if state_dir is not None:
            self.journal = StateJournal(state_dir)
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Rebuild the registry from the journal's validated ops."""
        assert self.journal is not None
        for record in self.journal.replay():
            try:
                if record["op"] == "register":
                    self.registry.register(
                        record["device"], record["version"], record["path"]
                    )
                else:
                    self.registry.retire(record["device"], record["version"])
            except (ReproError, OSError) as exc:
                raise ServiceError(
                    "cannot replay journaled {} of {}@{}: {}".format(
                        record["op"], record["device"], record["version"], exc
                    )
                ) from exc
        if len(self.journal):
            self._invalidate_metrics()

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "FloorService":
        """Bind and start accepting connections (``port=0`` = ephemeral)."""
        if self._server is not None:
            raise ServiceError("service is already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        self._started_unix = time.time()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("service is not started")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, flush every queue, release the socket.

        Open keep-alive connections are closed and their handler tasks
        awaited, so no task is left to be cancelled at loop teardown.
        """
        for _, batcher in self._batchers.values():
            batcher.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    # -- the data plane ----------------------------------------------------
    def batcher(self, device: str, version: str | None = None) -> MicroBatcher:
        """The micro-batcher serving a resolved artifact key.

        Batchers are created lazily per ``(device, version)`` key, so a
        hot-swap (new version registered) naturally routes unpinned
        traffic to a fresh queue/floor while pinned requests keep the
        old one until it is retired.
        """
        key = self.registry.resolve(device, version)
        sequence = self.registry.entry(*key).sequence
        cached = self._batchers.get(key)
        if cached is not None and cached[0] == sequence:
            self._batchers.move_to_end(key)
            return cached[1]
        # New key, or the key was re-registered (same-key hot-swap):
        # build a fresh floor from the registry's current truth.
        if cached is not None:
            cached[1].close()
            del self._batchers[key]
        _, artifact = self.registry.get(*key)
        batcher = MicroBatcher(
            TestFloor(artifact, retest_policy=self.retest_policy),
            max_batch_size=self.max_batch_size,
            max_latency=self.max_latency,
            max_pending=self.max_pending,
            on_flush=self._invalidate_metrics,
        )
        self._batchers[key] = (sequence, batcher)
        while len(self._batchers) > self.registry.max_resident:
            _, (_, coldest) = self._batchers.popitem(last=False)
            coldest.close()
        self._invalidate_metrics()
        return batcher

    async def disposition(
        self,
        device: str,
        measurements,
        version: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Disposition rows through the batching queue; JSON-ready reply.

        ``deadline`` is an absolute ``time.monotonic()`` instant; a
        request whose deadline passes while queued gets
        :class:`~repro.errors.DeadlineExceededError` instead of floor
        work (HTTP 504 at the front end).
        """
        key = self.registry.resolve(device, version)
        result = await self.batcher(*key).submit(measurements, deadline=deadline)
        reply = {
            "device": key[0],
            "version": key[1],
            "decisions": [int(d) for d in result["decisions"]],
            "counts": result["counts"],
            "batch_rows": result["batch_rows"],
            "flush_reason": result["flush_reason"],
        }
        # Additive bin view (tolerance-profile disposition): per-device
        # bin names plus the request's histogram.  The legacy keys
        # above are the binary-parity surface and never change.
        if result.get("bins") is not None:
            names = result["bin_names"]
            reply["bins"] = [names[b] for b in result["bins"]]
            reply["bin_counts"] = result["bin_counts"]
        return reply

    # -- control/observability planes --------------------------------------
    def register_artifact(self, device: str, version: str, path: str):
        """Register/hot-swap an artifact; journaled before it is acked.

        The registry applies the registration first (loading and
        checksumming the file -- a bad artifact never reaches the
        journal), then the journal records it durably.  If the journal
        append fails (disk full), the registration is rolled back by
        retiring the fresh key so memory and durable state cannot
        disagree, and a typed :class:`~repro.errors.JournalError`
        surfaces (HTTP 507).
        """
        device, version = str(device), str(version)
        had_entry = (device, version) in self.registry
        entry = self.registry.register(device, version, path)
        if self.journal is not None:
            try:
                self.journal.append(
                    "register", device, version, path=os.fspath(path)
                )
            except OSError as exc:
                if not had_entry:
                    self.registry.retire(device, version)
                raise JournalError(
                    "register {}@{} is not durable (journal append "
                    "failed: {}); rolled back".format(device, version, exc)
                ) from exc
        self._invalidate_metrics()
        return entry

    def retire_artifact(self, device: str, version: str):
        """Retire a version; journaled before it is acked."""
        device, version = str(device), str(version)
        entry = self.registry.retire(device, version)
        if self.journal is not None:
            try:
                self.journal.append("retire", device, version)
            except OSError as exc:
                # Un-retire in place: the entry keeps its original
                # sequence, so hot-swap resolution order is untouched
                # (a re-register would wrongly make it newest).
                entry.retired = False
                raise JournalError(
                    "retire {}@{} is not durable (journal append "
                    "failed: {}); rolled back".format(device, version, exc)
                ) from exc
        cached = self._batchers.pop(entry.key, None)
        if cached is not None:
            cached[1].close()
        self._invalidate_metrics()
        return entry

    def health(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self._started_unix,
            "n_artifacts": len(self.registry),
            "n_http_requests": self.n_http_requests,
        }

    def _invalidate_metrics(self) -> None:
        """Mark the cached metrics snapshot stale (cheap; no rebuild)."""
        self._metrics_version += 1

    def _metrics_snapshot(self) -> dict:
        """The per-artifact metrics state, rebuilt only when stale.

        Assembly walks every batcher, evaluates the drift charts and
        refreshes the telemetry gauges -- work that used to run on
        every scrape inside the event loop.  It now runs at most once
        per flush/registry change: a scrape at an unchanged version
        returns the cached snapshot untouched.  Because flushes and
        registry mutations are synchronous with respect to the loop,
        the snapshot is always built from a settled batcher set --
        a scrape can never observe a half-swapped registration.
        """
        cache = self._metrics_cache
        if cache is not None and cache[0] == self._metrics_version:
            return cache[1]
        version = self._metrics_version
        artifacts = {}
        for key, (_, batcher) in self._batchers.items():
            monitor = batcher.floor.monitor
            entry = batcher.stats.describe()
            entry["queue_depth"] = batcher.queue_depth
            entry["max_pending"] = batcher.max_pending
            entry["retired"] = self.registry.entry(*key).retired
            label = "{}@{}".format(*key)
            if monitor is not None:
                state = monitor.export_gauges(self.telemetry)
                alarms = state["alarms"]
                entry["drift"] = {
                    "devices_seen": monitor.n_seen,
                    "n_alarms": len(alarms),
                    "alarms": [str(alarm) for alarm in alarms],
                }
            else:
                entry["drift"] = None
            stats = batcher.stats
            self.telemetry.gauge(
                "repro_service_queue_depth",
                batcher.queue_depth,
                artifact=label,
                **self._worker_labels,
            )
            self.telemetry.gauge(
                "repro_service_devices_per_minute",
                stats.devices_per_minute,
                artifact=label,
                **self._worker_labels,
            )
            self.telemetry.gauge(
                "repro_service_mean_batch_rows",
                stats.mean_batch_rows,
                artifact=label,
                **self._worker_labels,
            )
            artifacts[label] = entry
        snapshot = {
            "total_devices": sum(
                b.stats.n_devices for _, b in self._batchers.values()
            ),
            "total_rejected": sum(
                b.stats.n_rejected for _, b in self._batchers.values()
            ),
            "artifacts": artifacts,
        }
        self._metrics_cache = (version, snapshot)
        return snapshot

    def metrics(self) -> dict:
        """Per-artifact serving metrics plus drift-monitor state."""
        snapshot = self._metrics_snapshot()
        out = {
            "uptime_seconds": time.time() - self._started_unix,
            "n_http_requests": self.n_http_requests,
        }
        out.update(snapshot)
        return out

    def metrics_prometheus(self) -> str:
        """The telemetry registry as Prometheus text exposition."""
        self._metrics_snapshot()  # refresh drift/serving gauges
        return prometheus_text(self.telemetry)

    # -- HTTP plumbing -----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ServiceError, ValueError) as exc:
                    # ValueError covers stream-level refusals the
                    # parser does not see itself, e.g. a header line
                    # beyond the StreamReader limit.
                    await _write_response(writer, 400, {"error": str(exc)}, False)
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                self.n_http_requests += 1
                request_id = headers.get("x-request-id") or "req-{}".format(
                    self.n_http_requests
                )
                started = time.perf_counter()
                with self.telemetry.span(
                    "service.request",
                    method=method,
                    path=path,
                    request_id=request_id,
                ) as span:
                    status, payload = await self._route(
                        method,
                        path,
                        headers,
                        body,
                        writer.get_extra_info("peername"),
                        query=query,
                    )
                    span.set(status=status)
                keep_alive = headers.get("connection", "").lower() != "close"
                hook = RESPONSE_FAULT_HOOK
                fault = hook("service", path) if hook is not None else None
                if fault is not None:
                    done = await apply_response_fault(writer, fault)
                    if done:
                        break
                extra = [("X-Request-Id", request_id)]
                if self.worker_label is not None:
                    extra.append(("X-Repro-Worker", self.worker_label))
                await _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive,
                    extra_headers=tuple(extra),
                )
                self.telemetry.observe(
                    "repro_service_request_seconds",
                    time.perf_counter() - started,
                    path=path,
                    **self._worker_labels,
                )
                self.telemetry.counter(
                    "repro_service_requests_total",
                    1,
                    path=path,
                    status=str(status),
                    **self._worker_labels,
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()

    def _authorized_admin(self, headers: dict, peer) -> bool:
        """Whether a request may touch the control plane."""
        return authorized_admin(self.admin_token, headers, peer)

    async def _route(
        self,
        method: str,
        path: str,
        headers: dict,
        body: bytes,
        peer=None,
        query: str = "",
    ):
        try:
            if (
                path in ("/artifacts", "/artifacts/retire")
                and method == "POST"
                and not self._authorized_admin(headers, peer)
            ):
                return 403, {
                    "error": "control-plane calls from non-loopback peers "
                    "require a valid X-Admin-Token header"
                }
            if path == "/disposition" and method == "POST":
                deadline = parse_deadline(headers)
                if deadline is not None and time.monotonic() >= deadline:
                    raise DeadlineExceededError(
                        "deadline budget expired before floor work; "
                        "re-issue with a fresh X-Repro-Deadline-Ms"
                    )
                request = _json_body(body)
                measurements = request.get("measurements")
                if measurements is None:
                    raise ServiceError("request must carry a 'measurements' array")
                return 200, await self.disposition(
                    _required(request, "device"),
                    np.asarray(measurements, dtype=float),
                    request.get("version"),
                    deadline=deadline,
                )
            if path == "/artifacts" and method == "GET":
                return 200, {"artifacts": self.registry.describe()}
            if path == "/artifacts" and method == "POST":
                request = _json_body(body)
                entry = self.register_artifact(
                    _required(request, "device"),
                    _required(request, "version"),
                    _required(request, "path"),
                )
                return 201, {"registered": entry.describe(resident=True)}
            if path == "/artifacts/retire" and method == "POST":
                request = _json_body(body)
                entry = self.retire_artifact(
                    _required(request, "device"),
                    _required(request, "version"),
                )
                return 200, {"retired": entry.describe(resident=False)}
            if path == "/health" and method == "GET":
                return 200, self.health()
            if path == "/metrics" and method == "GET":
                wire_format = _query_param(query, "format") or "json"
                if wire_format == "prometheus":
                    return 200, self.metrics_prometheus()
                if wire_format != "json":
                    raise ServiceError(
                        "unknown metrics format {!r}; expected 'json' "
                        "or 'prometheus'".format(wire_format)
                    )
                return 200, self.metrics()
            if path in (
                "/disposition",
                "/artifacts",
                "/artifacts/retire",
                "/health",
                "/metrics",
            ):
                return 405, {"error": "method {} not allowed".format(method)}
            return 404, {"error": "unknown path {}".format(path)}
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc)}
        except JournalError as exc:
            return 507, {"error": str(exc)}
        except ServiceOverloadError as exc:
            return 429, {"error": str(exc)}
        except UnknownArtifactError as exc:
            return 404, {"error": str(exc)}
        except (ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}
        except OSError as exc:
            return 400, {"error": "cannot load artifact: {}".format(exc)}
        except Exception as exc:  # pragma: no cover - defensive surface
            return 500, {"error": "internal error: {}".format(exc)}


def authorized_admin(admin_token: str | None, headers: dict, peer) -> bool:
    """Whether a request may touch the control plane.

    With a configured token, any peer presenting it (constant-time
    comparison) is in; without one, only loopback peers are.  Shared
    by :class:`FloorService` and the cluster router -- the policy must
    be identical at both tiers or a token would gate one door and not
    the other.
    """
    if admin_token is not None:
        presented = headers.get("x-admin-token", "")
        # Compare as bytes: compare_digest refuses non-ASCII str (a
        # hostile header must yield 403, not 500), and header values
        # were latin-1 decoded off the wire.
        return hmac.compare_digest(
            presented.encode("latin-1"),
            admin_token.encode("utf-8"),
        )
    if not isinstance(peer, (tuple, list)) or not peer:
        # Unix-domain or unnamed transports have no remote address;
        # reaching such a socket already implies local access.
        return True
    try:
        addr = ipaddress.ip_address(peer[0].split("%", 1)[0])
    except ValueError:
        return False
    # A dual-stack bind reports IPv4 peers as ::ffff:a.b.c.d; unwrap
    # so local callers stay authorized.
    mapped = getattr(addr, "ipv4_mapped", None)
    return (mapped or addr).is_loopback


def parse_deadline(headers: dict) -> float | None:
    """The request's absolute deadline from ``X-Repro-Deadline-Ms``.

    The header carries the caller's *remaining budget* in milliseconds;
    it is converted to an absolute ``time.monotonic()`` instant at the
    tier that reads it, so the budget naturally shrinks as the request
    descends router -> worker -> batcher.  Absent/empty -> ``None``
    (no deadline).  A malformed or non-positive value is a client
    error, not a deadline.
    """
    raw = headers.get(DEADLINE_HEADER, "").strip()
    if not raw:
        return None
    try:
        budget_ms = float(raw)
    except ValueError:
        raise ServiceError(
            "malformed X-Repro-Deadline-Ms header {!r}; expected a "
            "positive number of milliseconds".format(raw)
        ) from None
    if budget_ms <= 0 or not np.isfinite(budget_ms):
        raise ServiceError(
            "X-Repro-Deadline-Ms must be a positive finite number of "
            "milliseconds, got {!r}".format(raw)
        )
    return time.monotonic() + budget_ms / 1000.0


async def apply_response_fault(writer: asyncio.StreamWriter, fault) -> bool:
    """Apply an injected response fault; ``True`` ends the connection.

    ``("delay", s)`` sleeps and lets the response proceed; ``("drop",
    _)`` closes the connection without answering; ``("reset", _)``
    aborts the transport (RST on TCP).  Shared by the single-process
    service and the cluster router so both tiers fail identically.
    """
    kind, delay_s = fault
    if kind == "delay":
        await asyncio.sleep(delay_s)
        return False
    if kind == "drop":
        writer.close()
        return True
    if kind == "reset":
        transport = writer.transport
        if transport is not None:
            transport.abort()
        return True
    raise ServiceError("unknown response fault kind {!r}".format(kind))


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    507: "Insufficient Storage",
}


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ServiceError("malformed request line {!r}".format(request_line[:80]))
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    n_header_lines = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        n_header_lines += 1
        if n_header_lines > MAX_HEADER_LINES:
            raise ServiceError(
                "request carries more than {} header lines".format(MAX_HEADER_LINES)
            )
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", 0) or 0)
    except ValueError:
        raise ServiceError(
            "malformed Content-Length header {!r}".format(
                headers.get("content-length")
            )
        )
    if length < 0:
        raise ServiceError("negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            "request body of {} bytes exceeds the {} byte bound".format(
                length, MAX_BODY_BYTES
            )
        )
    body = await reader.readexactly(length) if length else b""
    path, _, query = path.partition("?")
    return method, path, query, headers, body


def _query_param(query: str, name: str) -> str | None:
    """First value of ``name`` in a raw query string (no unquoting --
    the service's parameters are plain tokens)."""
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == name:
            return value
    return None


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload,
    keep_alive: bool,
    extra_headers=(),
) -> None:
    # A str payload is served verbatim as text (the Prometheus
    # exposition); dict payloads are the JSON surface.
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    head = [
        "HTTP/1.1 {} {}".format(status, _STATUS_TEXT.get(status, "Unknown")),
        "Content-Type: {}".format(content_type),
        "Content-Length: {}".format(len(body)),
        "Connection: {}".format("keep-alive" if keep_alive else "close"),
    ]
    for name, value in extra_headers:
        head.append("{}: {}".format(name, value))
    # 429 = queue backpressure, 503 = cluster shard respawning; both
    # mean "same request, same place, shortly".
    if status in (429, 503):
        head.append("Retry-After: 1")
    writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)
    await writer.drain()


def _json_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8") or "null")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError("request body is not valid JSON: {}".format(exc))
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    return payload


def _required(request: dict, key: str):
    value = request.get(key)
    if value is None:
        raise ServiceError("request is missing required field {!r}".format(key))
    return value
