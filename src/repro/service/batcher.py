"""Micro-batching request queue in front of a :class:`TestFloor`.

The floor's hot path is one vectorized pass per batch
(:meth:`repro.floor.engine.TestFloor.dispose`), so a service fielding
many concurrent single-device or small-lot requests wins by coalescing
them: the batcher parks incoming rows on a per-artifact queue and
flushes one combined batch when either

* the queue reaches ``max_batch_size`` rows (size flush), or
* the oldest queued request has waited ``max_latency`` seconds
  (latency flush -- a lone request is never stuck waiting for
  traffic).

Because a disposition is a pure per-device function of the artifact
and the device's measurements, coalescing and splitting never change a
decision: the batcher slices the combined
:class:`~repro.floor.engine.BatchDisposition` back into per-request
results that are bit-identical to running each request through the
floor alone (the service equivalence tests assert this at multiple
coalescing configurations).

Backpressure is explicit: the queue holds at most ``max_pending``
rows; a request that would overflow it is rejected immediately with
:class:`~repro.errors.ServiceOverloadError` (HTTP 429 at the front
end) instead of growing an unbounded buffer.  The caller owns the
retry policy.

Single-threaded by design: everything runs on the asyncio event loop,
so queue state needs no locking and flush order is deterministic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadError,
)
from repro.floor.engine import (
    BatchDisposition,
    TestFloor,
    disposition_counts,
)
from repro.rules.binning import bin_histogram
from repro.telemetry import get_telemetry

#: Default rows per coalesced floor batch.
DEFAULT_MAX_BATCH_SIZE = 512
#: Default seconds a queued request may wait before a latency flush.
DEFAULT_MAX_LATENCY = 0.005
#: Default bound on queued rows before requests are rejected.
DEFAULT_MAX_PENDING = 65_536


@dataclass
class BatcherStats:
    """Running counters for one batcher (the ``/metrics`` endpoint)."""

    n_requests: int = 0
    n_rejected: int = 0
    n_deadline_expired: int = 0
    n_devices: int = 0
    n_batches: int = 0
    n_size_flushes: int = 0
    n_latency_flushes: int = 0
    n_shipped: int = 0
    n_scrapped: int = 0
    n_guard: int = 0
    n_retested: int = 0
    n_bin_retested: int = 0
    total_cost: float = 0.0
    busy_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    bin_counts: dict = field(default_factory=dict)

    @property
    def devices_per_minute(self) -> float:
        """Disposition throughput over floor busy time (not idle time)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.n_devices * 60.0 / self.busy_seconds

    @property
    def mean_batch_rows(self) -> float:
        """Realized coalescing (rows per flushed batch)."""
        if self.n_batches == 0:
            return 0.0
        return self.n_devices / self.n_batches

    def describe(self) -> dict:
        out = {f: getattr(self, f) for f in self.__dataclass_fields__}
        out["devices_per_minute"] = self.devices_per_minute
        out["mean_batch_rows"] = self.mean_batch_rows
        return out


@dataclass
class _PendingRequest:
    rows: np.ndarray
    future: asyncio.Future
    enqueued: float = field(default_factory=time.perf_counter)
    #: Absolute ``time.monotonic()`` deadline; ``None`` = no deadline.
    deadline: float | None = None


class MicroBatcher:
    """Coalesce concurrent disposition requests into floor batches.

    Parameters
    ----------
    floor:
        The :class:`~repro.floor.engine.TestFloor` serving this
        artifact (its drift monitor keeps rolling across batches).
    max_batch_size:
        Rows that trigger an immediate size flush.
    max_latency:
        Seconds the oldest queued request may wait before a latency
        flush.
    max_pending:
        Queued-row bound; beyond it requests are rejected with
        :class:`~repro.errors.ServiceOverloadError`.
    on_flush:
        Optional zero-argument callback invoked after every completed
        flush (the service uses it to invalidate its cached metrics
        snapshot off the scrape path).
    """

    def __init__(
        self,
        floor: TestFloor,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        on_flush=None,
    ):
        if max_batch_size < 1:
            raise ServiceError("max_batch_size must be positive")
        if max_latency < 0:
            raise ServiceError("max_latency must be non-negative")
        if max_pending < max_batch_size:
            raise ServiceError(
                "max_pending ({}) must be at least max_batch_size ({})".format(
                    max_pending, max_batch_size
                )
            )
        self.floor = floor
        self.n_specs = len(floor.artifact.specifications)
        self.max_batch_size = int(max_batch_size)
        self.max_latency = float(max_latency)
        self.max_pending = int(max_pending)
        self.stats = BatcherStats()
        self.on_flush = on_flush
        self._queue: list[_PendingRequest] = []
        self._pending_rows = 0
        self._flush_handle: asyncio.TimerHandle | None = None
        self._closed = False

    @property
    def queue_depth(self) -> int:
        """Rows currently queued (the backpressure signal)."""
        return self._pending_rows

    async def submit(
        self, rows: np.ndarray, deadline: float | None = None
    ) -> dict:
        """Queue one request; resolves with its per-request result.

        ``rows`` is one device row or a 2-D chunk.  The coroutine
        completes when the batch containing the request has been
        dispositioned; the result dict carries the request's own
        ``decisions`` plus its counts and the rows-per-batch it was
        coalesced into.

        ``deadline`` is an absolute ``time.monotonic()`` instant: a
        request whose deadline has already passed -- or passes while
        it waits in the queue -- resolves with
        :class:`~repro.errors.DeadlineExceededError` instead of
        spending floor time on an answer nobody is waiting for.
        """
        if self._closed:
            raise ServiceError("batcher is closed")
        if deadline is not None and time.monotonic() >= deadline:
            self.stats.n_deadline_expired += 1
            raise DeadlineExceededError(
                "deadline budget expired before the request could be queued"
            )
        rows = np.asarray(rows, dtype=float)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ServiceError(
                "a request must carry one device row or a non-empty 2-D "
                "chunk; got shape {}".format(rows.shape)
            )
        # Width must be checked before enqueueing: a mismatched request
        # coalesced with valid ones would make the combine step fail for
        # the whole batch instead of just the offending client.
        if rows.shape[1] != self.n_specs:
            raise ServiceError(
                "rows have {} measurements; the served program was "
                "trained on {} specifications".format(
                    rows.shape[1], self.n_specs
                )
            )
        # Larger than the queue itself can never be served no matter
        # how long the client retries -- a permanent 400, not a 429.
        if rows.shape[0] > self.max_pending:
            raise ServiceError(
                "request of {} rows exceeds the queue bound of {} and "
                "can never be served whole; split it into smaller "
                "chunks".format(rows.shape[0], self.max_pending)
            )
        if self._pending_rows + rows.shape[0] > self.max_pending:
            self.stats.n_rejected += 1
            get_telemetry().counter("repro_service_rejected_total", 1)
            if self.on_flush is not None:
                self.on_flush()
            raise ServiceOverloadError(
                "disposition queue is full ({} rows pending, bound {}); "
                "retry after the queue drains".format(
                    self._pending_rows, self.max_pending
                )
            )
        self.stats.n_requests += 1
        loop = asyncio.get_running_loop()
        request = _PendingRequest(
            rows=rows, future=loop.create_future(), deadline=deadline
        )
        self._queue.append(request)
        self._pending_rows += rows.shape[0]
        if self._pending_rows >= self.max_batch_size:
            self._flush("size")
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.max_latency, self._flush, "latency"
            )
        return await request.future

    def flush(self) -> None:
        """Disposition everything queued right now (used on shutdown)."""
        self._flush("explicit")

    def close(self) -> None:
        """Flush pending work and refuse further submissions."""
        if not self._closed:
            self.flush()
            self._closed = True

    # -- internals ---------------------------------------------------------
    def _flush(self, reason: str) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._queue:
            return
        batch_requests, self._queue = self._queue, []
        self._pending_rows = 0
        # Requests whose deadline expired while queued get a typed
        # failure and are dropped from the batch -- spending floor
        # time on them would only delay the still-live requests.
        now = time.monotonic()
        live: list[_PendingRequest] = []
        for request in batch_requests:
            if request.deadline is not None and now >= request.deadline:
                self.stats.n_deadline_expired += 1
                if not request.future.cancelled():
                    request.future.set_exception(
                        DeadlineExceededError(
                            "deadline budget expired while the request "
                            "was queued (waited {:.1f} ms)".format(
                                (time.perf_counter() - request.enqueued)
                                * 1000.0
                            )
                        )
                    )
            else:
                live.append(request)
        batch_requests = live
        if not batch_requests:
            if self.on_flush is not None:
                self.on_flush()
            return
        parts = [request.rows for request in batch_requests]
        started = time.perf_counter()
        try:
            combined = parts[0] if len(parts) == 1 else np.vstack(parts)
            outcome = self.floor.dispose(combined)
        except Exception as exc:
            for request in batch_requests:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            if self.on_flush is not None:
                self.on_flush()
            return
        finished = time.perf_counter()
        queue_wait = sum(started - request.enqueued
                         for request in batch_requests)
        self.stats.queue_wait_seconds += queue_wait
        self.stats.busy_seconds += finished - started
        self.stats.n_batches += 1
        self.stats.n_devices += outcome.n_devices
        if reason == "size":
            self.stats.n_size_flushes += 1
        elif reason == "latency":
            self.stats.n_latency_flushes += 1
        counts = outcome.counts()
        self.stats.n_shipped += counts["n_shipped"]
        self.stats.n_scrapped += counts["n_scrapped"]
        self.stats.n_guard += counts["n_guard"]
        self.stats.n_retested += counts["n_retested"]
        self.stats.n_bin_retested += outcome.n_bin_retested
        self.stats.total_cost += outcome.cost
        bin_counts = outcome.bin_counts()
        if bin_counts:
            for name, value in bin_counts.items():
                self.stats.bin_counts[name] = (
                    self.stats.bin_counts.get(name, 0) + value
                )
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("repro_service_flushes_total", 1, reason=reason)
            tel.counter("repro_service_coalesced_requests_total",
                        len(batch_requests))
            tel.observe("repro_service_floor_seconds",
                        finished - started)
            for request in batch_requests:
                tel.observe("repro_service_queue_wait_seconds",
                            started - request.enqueued)
            tel.gauge("repro_service_batch_rows", outcome.n_devices)
        if self.on_flush is not None:
            self.on_flush()

        offset = 0
        for request in batch_requests:
            stop = offset + request.rows.shape[0]
            if not request.future.cancelled():
                request.future.set_result(
                    _slice_result(outcome, offset, stop, reason)
                )
            offset = stop

    def __repr__(self) -> str:
        return (
            "MicroBatcher(max_batch={}, max_latency={:g}s, "
            "max_pending={}, depth={})".format(
                self.max_batch_size,
                self.max_latency,
                self.max_pending,
                self.queue_depth,
            )
        )


def _slice_result(
    outcome: BatchDisposition, start: int, stop: int, reason: str
) -> dict:
    """One request's view of the combined batch outcome."""
    decisions = outcome.decisions[start:stop]
    result = {
        "decisions": decisions,
        "counts": disposition_counts(
            decisions,
            outcome.first_pass[start:stop],
            outcome.truth[start:stop],
        ),
        "batch_rows": int(outcome.n_devices),
        "flush_reason": reason,
    }
    # Additive bin view -- the legacy keys above are the binary-parity
    # surface and never change shape or meaning.
    if outcome.bins is not None:
        bins = outcome.bins[start:stop]
        result["bins"] = bins
        result["bin_names"] = outcome.bin_names
        result["bin_counts"] = bin_histogram(bins, outcome.bin_names)
    return result
