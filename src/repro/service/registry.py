"""Versioned test-program artifact registry for the floor service.

A production floor serves many device types at once, and every device
type is periodically recalibrated (retrain, redeploy -- see
:mod:`repro.floor.monitor`).  The registry is the service's source of
truth for *which* compacted program dispositions *what*:

* artifacts are keyed by ``(device, version)``; registering a newer
  version of a device **hot-swaps** it -- new traffic that does not
  pin a version resolves to the newest active registration, while
  pinned in-flight requests keep the exact program they asked for;
* ``retire`` takes a version out of rotation without touching files;
* file-backed entries are **checksum-pinned**: the SHA-256 of the
  artifact file is recorded at registration, and every reload verifies
  it, so a file silently replaced on disk can never serve under an old
  registration (re-register to bless new bytes);
* loading always goes through the restricted unpickler of
  :meth:`repro.floor.artifact.TestProgramArtifact.loads`, so a
  registry path can point at untrusted storage; each file is read
  once, hashed and unpickled from the same buffer (pin verification
  happens *before* any unpickling on reloads);
* the resident set is **LRU-bounded**: at most ``max_resident``
  file-backed artifact objects stay in memory (object-backed
  registrations are pinned on top of the bound), colder file-backed
  entries are dropped and transparently reloaded (and re-verified) on
  next use.

The registry itself is synchronous and cheap; the asyncio service
calls it from the event loop (loads are rare control-plane events,
dispositions never touch the disk).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ServiceError, UnknownArtifactError
from repro.floor.artifact import TestProgramArtifact

#: Default bound on in-memory artifact objects.
DEFAULT_MAX_RESIDENT = 8


def file_checksum(path: str | os.PathLike) -> str:
    """SHA-256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _read_and_hash(path: str) -> tuple[str, bytes]:
    """One read of an artifact file: ``(sha256 hexdigest, bytes)``.

    Hashing the very buffer the artifact is then built from is what
    makes checksum pinning exact -- a file swapped on disk at any
    point cannot desynchronize the recorded digest from the resident
    artifact.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    return hashlib.sha256(blob).hexdigest(), blob


@dataclass
class RegistryEntry:
    """One registered ``(device, version)`` artifact."""

    device: str
    version: str
    #: Artifact file path; ``None`` for entries registered from an
    #: in-memory object (those are pinned resident -- nothing to
    #: reload them from).
    path: str | None
    #: SHA-256 of the file at registration time (``None`` when
    #: object-backed).
    checksum: str | None
    #: Unix time of registration.
    registered_unix: float
    #: Retired entries stay listed (audit trail) but never serve.
    retired: bool = False
    #: Monotonic registration sequence (hot-swap resolution order).
    sequence: int = 0
    #: Snapshot of cheap artifact facts for listings, so describing a
    #: non-resident entry does not force a reload.
    summary: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.device, self.version)

    def describe(self, resident: bool) -> dict:
        """JSON-ready listing row (the ``/artifacts`` endpoint)."""
        out = {
            "device": self.device,
            "version": self.version,
            "path": self.path,
            "checksum": self.checksum,
            "registered_unix": self.registered_unix,
            "retired": self.retired,
            "resident": resident,
        }
        out.update(self.summary)
        return out


def _summarize(artifact: TestProgramArtifact) -> dict:
    provenance = artifact.provenance
    return {
        "kept": list(artifact.kept),
        "n_eliminated": len(artifact.eliminated),
        "lookup": artifact.lookup is not None,
        "trained_device": provenance.get("device"),
        "train_seed": provenance.get("train_seed"),
    }


class ArtifactRegistry:
    """Load, hot-swap and retire test-program artifacts by key.

    Parameters
    ----------
    max_resident:
        Upper bound on artifact objects held in memory.  Object-backed
        entries (registered from a live
        :class:`~repro.floor.artifact.TestProgramArtifact`) are pinned
        and do not count toward evictions; file-backed entries beyond
        the bound are dropped coldest-first and reloaded on demand.
    loader:
        Artifact construction hook ``(blob, source) -> artifact``
        (tests stub it); defaults to the restricted
        :meth:`TestProgramArtifact.loads`.  Taking bytes rather than a
        path keeps the recorded checksum and the resident artifact
        derived from one read of the file -- there is no window in
        which the file can change between hashing and loading.
    """

    def __init__(self, max_resident: int = DEFAULT_MAX_RESIDENT, loader=None):
        if max_resident < 1:
            raise ServiceError("max_resident must be at least 1")
        self.max_resident = int(max_resident)
        self._loader = (
            loader if loader is not None else TestProgramArtifact.loads
        )
        self._entries: dict[tuple[str, str], RegistryEntry] = {}
        #: key -> artifact, in least-recently-used order (first = coldest).
        self._resident: OrderedDict[tuple[str, str], TestProgramArtifact] = (
            OrderedDict()
        )
        #: Object-backed keys that can never be evicted.
        self._pinned: set[tuple[str, str]] = set()
        self._sequence = 0
        self._lock = threading.RLock()
        #: Reloads forced by LRU eviction (observability).
        self.n_reloads = 0

    # -- control plane -----------------------------------------------------
    def register(
        self,
        device: str,
        version: str,
        source: str | os.PathLike | TestProgramArtifact,
    ) -> RegistryEntry:
        """Register (or hot-swap in) an artifact under ``(device, version)``.

        ``source`` is an artifact file path -- loaded immediately
        through the restricted loader, checksum recorded -- or a live
        artifact object.  Re-registering an existing key replaces it
        (same-key hot-swap: fresh bytes, fresh checksum).
        """
        device = str(device)
        version = str(version)
        if isinstance(source, TestProgramArtifact):
            artifact, path, checksum = source, None, None
        else:
            path = os.fspath(source)
            checksum, blob = _read_and_hash(path)
            artifact = self._loader(blob, path)
        with self._lock:
            self._sequence += 1
            entry = RegistryEntry(
                device=device,
                version=version,
                path=path,
                checksum=checksum,
                registered_unix=time.time(),
                sequence=self._sequence,
                summary=_summarize(artifact),
            )
            self._entries[entry.key] = entry
            self._pinned.discard(entry.key)
            if path is None:
                self._pinned.add(entry.key)
            self._resident.pop(entry.key, None)
            self._resident[entry.key] = artifact
            self._evict()
            return entry

    def retire(self, device: str, version: str) -> RegistryEntry:
        """Take a version out of rotation and drop it from memory."""
        with self._lock:
            entry = self._entry(device, version)
            entry.retired = True
            self._resident.pop(entry.key, None)
            self._pinned.discard(entry.key)
            return entry

    # -- data plane --------------------------------------------------------
    def resolve(self, device: str, version: str | None = None) -> tuple[str, str]:
        """The exact ``(device, version)`` key a request lands on.

        ``version=None`` resolves to the newest active registration for
        the device -- the hot-swap path.  Raises
        :class:`~repro.errors.ServiceError` when nothing can serve.
        """
        device = str(device)
        with self._lock:
            if version is not None:
                entry = self._entry(device, str(version))
                if entry.retired:
                    raise UnknownArtifactError(
                        "artifact {}@{} is retired".format(device, version)
                    )
                return entry.key
            live = [
                entry
                for entry in self._entries.values()
                if entry.device == device and not entry.retired
            ]
            if not live:
                raise UnknownArtifactError(
                    "no active artifact registered for device {!r}".format(device)
                )
            return max(live, key=lambda entry: entry.sequence).key

    def get(
        self, device: str, version: str | None = None
    ) -> tuple[tuple[str, str], TestProgramArtifact]:
        """Resolve a key and return ``(key, artifact)``, loading if cold."""
        with self._lock:
            key = self.resolve(device, version)
            artifact = self._resident.get(key)
            if artifact is not None:
                self._resident.move_to_end(key)
                return key, artifact
            entry = self._entries[key]
            # Only file-backed entries can be cold (object-backed ones
            # are pinned resident until retired).  The pin is checked
            # against the bytes read *before* they reach the
            # unpickler: swapped bytes are never parsed, let alone
            # served.
            assert entry.path is not None
            checksum, blob = _read_and_hash(entry.path)
            if checksum != entry.checksum:
                raise ServiceError(
                    "artifact file {!r} changed on disk since {}@{} was "
                    "registered (checksum {}... != registered {}...); "
                    "re-register to serve the new bytes".format(
                        entry.path,
                        entry.device,
                        entry.version,
                        checksum[:12],
                        (entry.checksum or "")[:12],
                    )
                )
            artifact = self._loader(blob, entry.path)
            self.n_reloads += 1
            self._resident[key] = artifact
            self._evict()
            return key, artifact

    # -- views -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RegistryEntry]:
        return iter(list(self._entries.values()))

    def __contains__(self, key) -> bool:
        """Whether ``(device, version)`` is registered (retired counts)."""
        device, version = key
        with self._lock:
            return (str(device), str(version)) in self._entries

    def entry(self, device: str, version: str) -> RegistryEntry:
        """The registration record for an exact key."""
        with self._lock:
            return self._entry(device, version)

    def resident_keys(self) -> tuple[tuple[str, str], ...]:
        """Keys currently held in memory, coldest first."""
        with self._lock:
            return tuple(self._resident)

    def describe(self) -> list[dict]:
        """JSON-ready listing of every registration."""
        with self._lock:
            return [
                entry.describe(resident=entry.key in self._resident)
                for entry in sorted(
                    self._entries.values(), key=lambda e: e.sequence
                )
            ]

    # -- internals ---------------------------------------------------------
    def _entry(self, device: str, version: str) -> RegistryEntry:
        try:
            return self._entries[(str(device), str(version))]
        except KeyError:
            raise UnknownArtifactError(
                "unknown artifact {}@{}; registered: {}".format(
                    device,
                    version,
                    ", ".join(
                        "{}@{}".format(*key) for key in sorted(self._entries)
                    )
                    or "none",
                )
            ) from None

    def _evict(self) -> None:
        # The bound governs the evictable (file-backed) set only: if
        # pinned entries counted toward it, enough of them would force
        # every file-backed get() into a load-then-immediately-evict
        # reload thrash.
        evictable = [key for key in self._resident if key not in self._pinned]
        overflow = len(evictable) - self.max_resident
        for key in evictable[:max(overflow, 0)]:
            del self._resident[key]

    def __repr__(self) -> str:
        return "ArtifactRegistry({} registered, {} resident, bound {})".format(
            len(self._entries), len(self._resident), self.max_resident
        )
