"""Experiment C1 -- headline claim: >50 % accelerometer test-cost cut.

"For the accelerometer, this level of compaction would reduce test
cost by more than half."  The cost model charges each specification
test one unit plus a per-temperature fixture cost dominated by the
thermal soak; eliminating the hot and cold insertions then removes
both soaks.

The benchmark also runs the full tester program (with guard-band
retest at the complete-test-set cost) so the saving includes the
retest overhead, not just the idealized per-device figure.
"""

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.costmodel import TestCostModel as CostModel
from repro.mems import TEMPERATURES, tests_at_temperature
from repro.tester import TestProgram as Program

#: Per-test application cost (units).
TEST_COST = 1.0
#: Thermal soak cost per temperature insertion; room needs no soak.
SOAK_COST = {"-40C": 25.0, "27C": 2.0, "80C": 25.0}


def build_cost_model():
    """Soak-aware cost model over the twelve accelerometer tests."""
    costs, groups = {}, {}
    for temp in TEMPERATURES:
        group = "{:g}C".format(temp)
        for name in tests_at_temperature(temp):
            costs[name] = TEST_COST
            groups[name] = group
    return CostModel(costs, groups, SOAK_COST)


def bench_cost_reduction(benchmark):
    """Quantify the cost saving of eliminating hot+cold tests."""
    train, test = datasets("mems")
    cost_model = build_cost_model()
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)

    def flow():
        compactor = Compactor(guard_band=0.03)
        model, _ = compactor.evaluate_subset(train, test, eliminated)
        program = Program(model, cost_model,
                              retest_policy="full_retest")
        return program.run(test)

    outcome = run_once(benchmark, flow)
    kept = [n for n in train.names if n not in set(eliminated)]
    ideal = cost_model.reduction(kept)
    print_table(
        "Headline: accelerometer test-cost reduction",
        ["quantity", "value"],
        [("full test-set cost / device", cost_model.full_cost()),
         ("compacted cost / device (ideal)", cost_model.cost(kept)),
         ("ideal reduction %", 100 * ideal),
         ("with guard-band retest: cost / device",
          outcome.cost_per_device),
         ("with retest: reduction %", 100 * outcome.cost_reduction),
         ("devices retested", outcome.n_retested),
         ("final yield loss %", 100 * outcome.report.yield_loss_rate),
         ("final defect escape %",
          100 * outcome.report.defect_escape_rate)])

    # The paper's claim, including the retest overhead.
    assert outcome.cost_reduction > 0.5
    assert ideal > 0.5
