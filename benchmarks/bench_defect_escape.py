"""Experiment A6 -- future work: compacted tests vs real defects.

The paper's Monte-Carlo data is purely parametric; its future work
calls for evaluation against populations "that also contain real
defects".  This benchmark injects catastrophic faults (one geometry
parameter scaled 4x up or down) into a fraction of a MEMS production
lot and checks that a test set compacted on *clean* data still screens
the defective parts: gross faults disturb the room-temperature
measurements too, so the kept tests plus the model catch them.
"""

import numpy as np

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.metrics import evaluate_predictions
from repro.mems import AccelerometerBench, tests_at_temperature
from repro.process.defects import DefectInjector
from repro.process.montecarlo import generate_dataset

#: Fraction of the lot carrying an injected catastrophic defect.
DEFECT_RATE = 0.10
#: Multiplicative fault severity.
SEVERITY = 4.0


def bench_defect_escape(benchmark):
    """Screening performance on a defect-laden lot."""
    train, _ = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    compactor = Compactor(guard_band=0.03)

    def flow():
        model, _ = compactor.evaluate_subset(train, train, eliminated)
        injector = DefectInjector(AccelerometerBench(),
                                  defect_rate=DEFECT_RATE,
                                  severity=SEVERITY)
        lot = generate_dataset(injector, 800, seed=555)
        predictions = model.predict_dataset(lot)
        report = evaluate_predictions(lot.labels, predictions)
        return lot, report

    lot, report = run_once(benchmark, flow)
    print_table(
        "Future work A6: compacted MEMS test set vs {:.0%} catastrophic "
        "defects".format(DEFECT_RATE),
        ["quantity", "value"],
        [("lot yield %", 100 * lot.yield_fraction),
         ("defect escape %", 100 * report.defect_escape_rate),
         ("yield loss %", 100 * report.yield_loss_rate),
         ("guard band %", 100 * report.guard_rate)])

    # Catastrophic defects must not slip through at a meaningful rate;
    # the guard-band retest then resolves the flagged devices.
    assert report.defect_escape_rate < 0.02
    assert lot.yield_fraction < 0.80  # the defects actually bite
