"""Experiment F5 -- paper Fig. 5: op-amp compaction trend.

Regenerates the figure's series: yield loss, defect escape and
guard-band population as specification tests are examined (and mostly
eliminated) left to right by the greedy loop.

Expected shape (paper): errors stay near zero for the first several
eliminated tests and grow slowly; the guard-band population stays
roughly stable; about half of the eleven tests are redundant at an
error tolerance around 1 %.
"""

from benchmarks.harness import datasets, print_table, run_once
from repro import compact_specification_tests

#: Error tolerance e_T used for the figure.
TOLERANCE = 0.01
#: Guard-band half-width (paper: 5 % of the acceptability ranges).
GUARD = 0.05


def bench_fig5_compaction_trend(benchmark):
    """Run the greedy loop and print the per-test series of Fig. 5."""
    train, test = datasets("opamp")

    result = run_once(benchmark, lambda: compact_specification_tests(
        train, test, tolerance=TOLERANCE, guard_band=GUARD))

    rows = [(row["test"],
             "eliminated" if row["eliminated"] else "kept",
             row["yield_loss_pct"], row["defect_escape_pct"],
             row["guard_pct"])
            for row in result.history_table()]
    print_table(
        "Fig. 5: errors vs cumulatively eliminated op-amp tests "
        "(e_T={:.0%}, guard={:.0%})".format(TOLERANCE, GUARD),
        ["test", "decision", "yield loss %", "defect escape %",
         "guard band %"],
        rows)
    print("\nFinal compacted set ({} of {} tests kept): {}".format(
        len(result.kept), len(train.names), ", ".join(result.kept)))
    print("Final model: {}".format(result.final_report.summary()))

    # Shape assertions: meaningful compaction at controlled error.
    assert len(result.eliminated) >= 3
    assert result.final_report.error_rate <= TOLERANCE + 1e-9
    assert result.final_report.yield_loss_rate <= 0.01
