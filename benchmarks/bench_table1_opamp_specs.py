"""Experiment T1 -- paper Table 1: op-amp specifications and yields.

Regenerates the op-amp specification table (name, unit, nominal value,
acceptability range) by measuring the nominal design with the circuit
simulator, and reports the Monte-Carlo training/test yields, which the
paper quotes as 75.4 % / 84.8 %.
"""

import pytest

from benchmarks.harness import datasets, print_table, run_once
from repro.opamp import OPAMP_SPECIFICATIONS, measure_opamp


def bench_table1_nominal_specs(benchmark):
    """Measure the nominal op-amp and print the Table 1 rows."""
    values = run_once(benchmark, measure_opamp)

    rows = []
    for spec in OPAMP_SPECIFICATIONS:
        rows.append((spec.name, spec.unit, values[spec.name],
                     "{:g} .. {:g}".format(spec.low, spec.high)))
    print_table("Table 1: op-amp specifications",
                ["specification", "unit", "measured nominal", "range"],
                rows)

    # The nominal design must pass every acceptability range.
    for spec in OPAMP_SPECIFICATIONS:
        assert spec.contains(values[spec.name]), spec.name


def bench_table1_population_yields(benchmark):
    """Report Monte-Carlo yields (paper: 75.4 % train / 84.8 % test)."""
    train, test = run_once(benchmark, lambda: datasets("opamp"))
    print_table(
        "Table 1 companion: population yields",
        ["population", "instances", "yield %"],
        [("train", len(train), 100 * train.yield_fraction),
         ("test", len(test), 100 * test.yield_fraction)])
    # The calibrated ranges land the yield in the paper's 70-90 % zone.
    assert 0.60 < train.yield_fraction < 0.90
    assert 0.60 < test.yield_fraction < 0.90
