"""Experiment A3 -- ablation: grid training-data compaction (Sec. 4.3).

Sweeps the grid resolution used to compress the training set before
model fitting.  Expected trade-off: coarse grids shrink the training
set (fast fits) at some accuracy cost; fine grids approach the
uncompacted behaviour.  The compression ratio itself is also reported
(the paper's motivation is fit time on very large training sets).
"""

import time

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.grid import GridCompactor
from repro.mems import tests_at_temperature

#: Grid resolutions swept; None = no grid compaction (baseline).
RESOLUTIONS = (None, 4, 8, 16)


def bench_ablation_grid_compaction(benchmark):
    """Grid-resolution sweep on the MEMS hot+cold elimination."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    kept = [n for n in train.names if n not in set(eliminated)]

    def sweep():
        rows = []
        for resolution in RESOLUTIONS:
            grid = (GridCompactor(resolution)
                    if resolution is not None else None)
            compactor = Compactor(guard_band=0.03,
                                      grid_compactor=grid)
            t0 = time.perf_counter()
            _, report = compactor.evaluate_subset(train, test, eliminated)
            elapsed = time.perf_counter() - t0
            if grid is not None:
                X = train.normalized_values(kept)
                _, _, info = grid.compact(X, train.labels)
                compression = info["compression"]
            else:
                compression = 1.0
            rows.append(("none" if resolution is None else resolution,
                         compression,
                         100 * report.yield_loss_rate,
                         100 * report.defect_escape_rate,
                         100 * report.guard_rate,
                         elapsed))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation A3: grid training-data compaction "
        "(MEMS, hot+cold eliminated)",
        ["resolution", "train kept frac", "yield loss %",
         "defect escape %", "guard band %", "fit+eval s"],
        rows)

    # All grids genuinely compress (and the kept fraction is typically
    # U-shaped in resolution: coarse grids straddle the boundary with
    # more *mixed* cells, which keep their raw instances, while very
    # fine grids degenerate toward one center per instance).
    for row in rows[1:]:
        assert 0.0 < row[1] < 1.0
    # Every variant keeps the error controlled.
    for row in rows:
        assert row[2] + row[3] < 3.0
