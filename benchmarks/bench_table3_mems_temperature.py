"""Experiment T3 -- paper Table 3: eliminating MEMS temperature tests.

The paper's compaction of the hot/cold temperature insertions::

    eliminated   defect escape %   yield loss %   guard band %
    -40          0.1               0.0            2.6
    80           0.1               0.1            5.8
    both         0.2               0.1            8.4

Our reproduction should preserve the shape: per-temperature errors
well below 1 %, the "both" case no easier than either single one, and
a single-digit guard-band percentage.
"""

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.mems import tests_at_temperature

#: Guard-band half-width for the MEMS experiment.
GUARD = 0.03


def bench_table3_temperature_elimination(benchmark):
    """Evaluate the three block eliminations of Table 3."""
    train, test = datasets("mems")
    compactor = Compactor(guard_band=GUARD)

    cold = tests_at_temperature(-40)
    hot = tests_at_temperature(80)
    cases = [("-40", cold), ("80", hot), ("both", cold + hot)]

    def evaluate_all():
        rows = []
        for label, eliminated in cases:
            _, report = compactor.evaluate_subset(train, test, eliminated)
            rows.append((label, 100 * report.defect_escape_rate,
                         100 * report.yield_loss_rate,
                         100 * report.guard_rate))
        return rows

    rows = run_once(benchmark, evaluate_all)
    print_table(
        "Table 3: MEMS temperature-test elimination (guard={:.0%})".format(
            GUARD),
        ["eliminated", "defect escape %", "yield loss %", "guard band %"],
        rows)

    for label, de, yl, guard in rows:
        assert de < 1.0, label    # paper: 0.1-0.2 %
        assert yl < 1.0, label    # paper: 0.0-0.1 %
        assert guard < 20.0, label
    # "both" is at least as hard as the easier single temperature.
    assert rows[2][1] >= min(rows[0][1], rows[1][1]) - 1e-9
