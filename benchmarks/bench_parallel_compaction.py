"""Experiment R1 -- runtime engine speedup over the plain compactor.

Runs the same greedy compaction (paper Fig. 2) four ways and compares
wall-clock time and results:

1. plain serial :class:`~repro.core.compaction.TestCompactor` (the
   baseline everything must stay equivalent to);
2. :class:`~repro.runtime.engine.CompactionEngine` serial -- Gram
   cache + warm starts + final-refit reuse;
3. the engine with ``n_jobs`` workers -- speculative candidate
   fan-out (bit-identical to mode 2 by construction);
4. :meth:`~repro.runtime.engine.CompactionEngine.run_many` over
   several Monte-Carlo lots, serial vs. parallel.

The engine's parallel speedup needs real cores: the assertions demand
>= 2x over the plain baseline only when the machine has at least four
CPUs.  Result equivalence is asserted unconditionally.

Runnable directly (``python benchmarks/bench_parallel_compaction.py``)
or through pytest-benchmark like every other experiment here.
"""

import os

if __name__ == "__main__":
    # Allow `python benchmarks/bench_parallel_compaction.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks.harness import datasets, print_table, run_once, wall_time
from repro.core.compaction import TestCompactor
from repro.learn.svm import SVC
from repro.runtime import CompactionEngine, cpu_count

#: Compaction configuration under test.
TOLERANCE = 0.01
GUARD = 0.05
#: Worker count for the parallel modes.
N_JOBS = min(4, cpu_count())
#: Monte-Carlo lots for the run_many comparison.
N_LOTS = 4


def _model_factory():
    """Fixed SVC so every mode times the same model fits.

    (The auto-tuned factory re-runs a grid search per candidate; it
    parallelizes the same way but would push a single benchmark run
    into tens of minutes.)
    """
    return SVC(C=500.0, gamma=8.0)


def _make_compactor():
    return TestCompactor(tolerance=TOLERANCE, guard_band=GUARD,
                         model_factory=_model_factory)


def _make_engine(n_jobs):
    return CompactionEngine(tolerance=TOLERANCE, guard_band=GUARD,
                            model_factory=_model_factory, n_jobs=n_jobs)


def _same_outcome(a, b):
    return (a.kept == b.kept and a.eliminated == b.eliminated
            and a.final_report == b.final_report)


def run_experiment():
    """Execute all modes; returns the printed rows as structured data."""
    train, test = datasets("opamp")
    lots = [(train.subset(range(i, len(train), N_LOTS)),
             test.subset(range(i, len(test), N_LOTS)))
            for i in range(N_LOTS)]

    baseline, t_plain = wall_time(_make_compactor().run, train, test)
    serial, t_serial = wall_time(_make_engine(1).run, train, test)
    parallel, t_par = wall_time(_make_engine(N_JOBS).run, train, test)
    lots_serial, t_lots_serial = wall_time(
        _make_engine(1).run_many, lots)
    lots_par, t_lots_par = wall_time(
        _make_engine(N_JOBS).run_many, lots)

    rows = [
        ("plain TestCompactor", t_plain, 1.0),
        ("engine n_jobs=1 (cache+warm)", t_serial, t_plain / t_serial),
        ("engine n_jobs={}".format(N_JOBS), t_par, t_plain / t_par),
        ("run_many {} lots serial".format(N_LOTS), t_lots_serial, 1.0),
        ("run_many {} lots n_jobs={}".format(N_LOTS, N_JOBS),
         t_lots_par, t_lots_serial / t_lots_par),
    ]
    print_table(
        "R1: runtime engine speedup ({} CPUs available)".format(
            cpu_count()),
        ["mode", "seconds", "speedup"], rows)
    print("\nkept: {}  eliminated: {}".format(
        ", ".join(baseline.kept), ", ".join(baseline.eliminated)))
    print("speculation: {}".format(parallel.stats.get("speculation")))
    print("kernel cache (serial run): {}".format(
        serial.stats.get("kernel_cache")))

    # Equivalence is non-negotiable in every environment.
    assert _same_outcome(baseline, serial)
    assert _same_outcome(serial, parallel)
    assert [r.eliminated for r in lots_serial] == \
        [r.eliminated for r in lots_par]
    for a, b in zip(serial.steps, parallel.steps):
        assert a.report == b.report and a.eliminated == b.eliminated

    # Speedup needs real cores; the ISSUE's acceptance bar is a
    # 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        assert t_plain / t_par >= 2.0 or \
            t_lots_serial / t_lots_par >= 2.0, (
                "expected >=2x from parallel execution; got "
                "single-run {:.2f}x, batch {:.2f}x".format(
                    t_plain / t_par, t_lots_serial / t_lots_par))
    return rows


def bench_parallel_compaction(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    run_experiment()
