"""Experiment T1 -- telemetry overhead and the determinism boundary.

Runs one floor workload (deploy a synthetic test program, disposition
a production population) three ways:

1. **off** -- telemetry disabled (the module-level no-op singleton);
2. **on** -- a live :class:`~repro.telemetry.Telemetry` registry with
   a JSONL sink capturing the full span trace;
3. **off-again** -- disabled once more, timing the no-op path after
   the instrumented run (guards against lingering global state).

Two claims are asserted unconditionally in every environment (the
CI "equivalence-only" mode keeps exactly these):

* **bit-identity** -- decisions, first-pass flags and total cost of
  the instrumented run equal the uninstrumented run bit for bit, and
  the trace actually recorded the work (spans + counters non-empty).
  Telemetry observes; it never participates.
* **well-formed export** -- the registry renders to Prometheus text
  exposition that the repo's own strict parser accepts.

The overhead bar (instrumented wall time within ``OVERHEAD_FACTOR``
of uninstrumented) fires only on >= 4-CPU machines without
``REPRO_BENCH_NO_SPEEDUP``, mirroring the other ``bench_*``
experiments; shared-CI timing noise must not fail correctness runs.

Results are printed and, when ``REPRO_BENCH_JSON`` names a path (or
when run as a script), written as a JSON record (CI uploads it as the
``BENCH_telemetry.json`` artifact).
"""

import json
import os
import tempfile
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_telemetry.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once
from repro.core.costmodel import TestCostModel as CostModel
from repro.core.pipeline import CompactionPipeline
from repro.floor import TestFloor as Floor
from repro.learn import SVC
from repro.runtime import cpu_count
from repro.telemetry import (
    JsonlSink,
    Telemetry,
    disable,
    parse_prometheus,
    prometheus_text,
    read_trace,
    set_telemetry,
)

from tests.synthetic import SyntheticDut, make_synthetic_dataset

#: Training / held-out population sizes for the program build.
N_TRAIN, N_TEST = 600, 300
#: Production devices dispositioned per timed pass.
N_DEVICES = 12_000
#: Timed floor passes per mode (the floor is the steady-state path).
N_PASSES = 10
#: Instrumented wall time must stay within this factor of the
#: uninstrumented baseline (generous: the claim is "cheap", not
#: "free", and CI timers are noisy).
OVERHEAD_FACTOR = 1.5


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (no per-fit tuning)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def _build():
    """Deploy the program and materialize the production population."""
    dut = SyntheticDut(n_specs=6, seed=99)
    train = make_synthetic_dataset(n=N_TRAIN, n_specs=6, seed=1,
                                   dut_seed=99)
    test = make_synthetic_dataset(n=N_TEST, n_specs=6, seed=2,
                                  dut_seed=99)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=CostModel.uniform(train.names),
        device="synthetic", train_seed=1, lookup_resolution=17)
    rng = np.random.default_rng(17)
    rows = np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(N_DEVICES)])
    return artifact, rows


def _timed_floor(artifact, rows):
    """``N_PASSES`` lot runs; returns (last report, wall seconds)."""
    report = None
    started = time.perf_counter()
    for index in range(N_PASSES):
        report = Floor(artifact).run_stream(
            [rows], lot="bench-{}".format(index), keep_decisions=True)
    return report, time.perf_counter() - started


def run_experiment():
    """Execute the three modes; returns the structured results."""
    artifact, rows = _build()

    disable()
    baseline, seconds_off = _timed_floor(artifact, rows)

    trace_path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"),
                              "trace.jsonl")
    tel = Telemetry(run_id="bench-telemetry",
                    sink=JsonlSink(trace_path))
    previous = set_telemetry(tel)
    try:
        observed, seconds_on = _timed_floor(artifact, rows)
        exposition = prometheus_text(tel)
        tel.close()
    finally:
        set_telemetry(previous)

    disable()
    _, seconds_off_again = _timed_floor(artifact, rows)

    # Claim 1: the determinism boundary.  Instrumentation observed
    # every pass yet changed nothing.
    assert np.array_equal(baseline.decisions, observed.decisions)
    assert baseline.n_shipped == observed.n_shipped
    assert baseline.total_cost == observed.total_cost
    spans, snapshots = read_trace(trace_path)
    assert spans, "instrumented run recorded no spans"
    assert snapshots, "closing the registry recorded no snapshot"
    assert {s["name"] for s in spans} >= {"floor.lot"}

    # Claim 2: the export is well-formed per the strict parser.
    families = parse_prometheus(exposition)
    assert "repro_stage_calls_total" in families

    overhead = (seconds_on / seconds_off
                if seconds_off > 0 else float("inf"))
    print_table(
        "T1: telemetry overhead on the floor path ({} CPUs available)"
        .format(cpu_count()),
        ["mode", "devices", "passes", "seconds", "vs off"],
        [("off", N_DEVICES, N_PASSES, seconds_off, 1.0),
         ("on", N_DEVICES, N_PASSES, seconds_on, overhead),
         ("off-again", N_DEVICES, N_PASSES, seconds_off_again,
          seconds_off_again / seconds_off if seconds_off > 0 else 1.0)])

    record = {
        "experiment": "bench_telemetry",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "n_devices": N_DEVICES,
        "n_passes": N_PASSES,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "seconds_off_again": seconds_off_again,
        "overhead_factor": overhead,
        "n_spans": len(spans),
        "bit_identical": True,
    }
    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print("wrote {}".format(out))

    # The overhead bar needs stable timing; acceptance is a 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        assert overhead <= OVERHEAD_FACTOR, (
            "instrumented floor pass took {:.2f}x the uninstrumented "
            "baseline (bar: {:.2f}x)".format(overhead, OVERHEAD_FACTOR))
    return record


def bench_telemetry(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_telemetry.json"))
    run_experiment()
