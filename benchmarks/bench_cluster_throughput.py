"""Experiment F3 -- cluster scale-out throughput and sharded equivalence.

Deploys the same two synthetic test programs as experiment F2, saves
them as artifact files, and hosts them in a
:class:`~repro.service.cluster.ClusterService` -- N worker processes
each running a :class:`~repro.service.server.FloorService`, fronted by
the device-hash sharding router -- at increasing worker counts, with
the distributed load generator replaying identical deterministic
traffic at every count.

Equivalence is asserted unconditionally in every environment and at
every worker count, in both directions the cluster layer could break
it:

1. **sharded == offline** -- every decision served through the router
   is bit-identical to an offline :class:`~repro.floor.engine.TestFloor`
   pass over the same devices;
2. **sharded == single-worker** -- the decision arrays of every
   multi-worker configuration equal the 1-worker configuration's
   arrays element for element (worker count shapes latency, never a
   decision).

The scale-out bar -- >= 2x aggregate served throughput at 4 workers
over 1 worker -- fires only on >= 4-CPU machines and is skipped under
``REPRO_BENCH_NO_SPEEDUP=1`` (the CI "equivalence-only" mode);
elsewhere the worker sweep stops at 2 and only equivalence is held.

The record is *merged* into ``BENCH_service.json`` under a
``"cluster"`` key (read-modify-write), so the service and cluster
trajectories live in one artifact: aggregate p50/p95/p99 + sustained
RPS per worker count, plus the per-worker attribution from the
``X-Repro-Worker`` response header.

Runnable directly (``python benchmarks/bench_cluster_throughput.py``)
or through pytest-benchmark like every other experiment here.
"""

import asyncio
import json
import os
import tempfile
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_cluster_throughput.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.bench_service_throughput import _build_pair
from benchmarks.harness import print_table, run_once
from repro.runtime import cpu_count
from repro.service import (
    ClusterService,
    TrafficPlan,
    offline_reference,
    run_load,
)

#: Devices replayed per artifact per worker-count configuration.
N_DEVICES = {"synthA": 1200, "synthB": 800}
#: Scale-out acceptance bar: aggregate throughput at WORKERS_GATE
#: workers must be at least this multiple of the 1-worker throughput.
SPEEDUP_FLOOR = 2.0
#: Worker count the speedup bar is measured at (>= 4-CPU hosts only).
WORKERS_GATE = 4
#: Concurrent keep-alive load-generator connections.
N_CLIENTS = 8


def worker_counts():
    """The worker sweep for this host: the full 1 -> 4 ramp where the
    cores can back it, a 1 -> 2 sharding sanity sweep elsewhere."""
    if cpu_count() >= 4:
        return [1, 2, WORKERS_GATE]
    return [1, 2]


def _run_workers(registrations, plans, n_workers):
    async def main():
        cluster = ClusterService(registrations=registrations,
                                 n_workers=n_workers)
        await cluster.start("127.0.0.1", 0)
        try:
            return await run_load("127.0.0.1", cluster.port, plans,
                                  n_clients=N_CLIENTS, max_chunk=12,
                                  seed=3)
        finally:
            await cluster.stop()

    return asyncio.run(main())


def _merge_record(path, cluster_record):
    """Read-modify-write: fold the cluster record into the service
    bench's JSON file (or start a fresh record when absent)."""
    record = {}
    if os.path.isfile(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict):
                record = existing
        except (OSError, json.JSONDecodeError):
            record = {}
    record.setdefault("experiment", "bench_service_throughput")
    record.setdefault("unix_time", time.time())
    record.setdefault("cpus", cpu_count())
    record["cluster"] = cluster_record
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    return record


def run_experiment():
    """Execute the worker sweep; returns the structured results."""
    pair_a = _build_pair(n_specs=6, dut_seed=99, lookup_resolution=17)
    pair_b = _build_pair(n_specs=5, dut_seed=42)
    plans = [
        TrafficPlan("synthA", pair_a[0], N_DEVICES["synthA"], seed=7,
                    reference=offline_reference(pair_a[1])),
        TrafficPlan("synthB", pair_b[0], N_DEVICES["synthB"], seed=8,
                    reference=offline_reference(pair_b[1])),
    ]

    rows = []
    cluster_record = {
        "experiment": "bench_cluster_throughput",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "n_clients": N_CLIENTS,
        "configs": {},
    }
    throughput = {}
    baseline_decisions = None
    with tempfile.TemporaryDirectory() as tmp:
        path_a = os.path.join(tmp, "synthA.rtp")
        path_b = os.path.join(tmp, "synthB.rtp")
        pair_a[1].save(path_a)
        pair_b[1].save(path_b)
        registrations = [("synthA", "1", path_a), ("synthB", "1", path_b)]
        for n_workers in worker_counts():
            report = _run_workers(registrations, plans, n_workers)
            # Invariant 1, every environment: sharded serving is
            # bit-identical to the offline floor for every plan.
            assert report.equivalent, (
                "{} worker(s) served decisions differing from the "
                "offline floor".format(n_workers))
            decisions = [plan.decisions for plan in report.plans]
            if baseline_decisions is None:
                baseline_decisions = decisions
            else:
                # Invariant 2, every environment: resharding the same
                # traffic across more workers changes no decision.
                for base, sharded in zip(baseline_decisions, decisions):
                    assert np.array_equal(base, sharded), (
                        "{} worker(s) changed decisions vs the "
                        "1-worker run".format(n_workers))
            throughput[n_workers] = report.devices_per_minute
            rows.append((n_workers, report.n_devices, report.n_requests,
                         report.n_retried, report.wall_seconds,
                         report.devices_per_minute))
            entry = {
                "n_workers": n_workers,
                "n_devices": report.n_devices,
                "n_requests": report.n_requests,
                "n_retried": report.n_retried,
                "wall_seconds": report.wall_seconds,
                "devices_per_minute": report.devices_per_minute,
                "equivalent": report.equivalent,
                "per_worker": report.per_worker_summary(),
            }
            entry.update(report.latency_summary())
            cluster_record["configs"]["workers_{}".format(n_workers)] = entry

    print_table(
        "F3: cluster scale-out throughput over HTTP ({} CPUs available)"
        .format(cpu_count()),
        ["workers", "devices", "requests", "retried", "seconds",
         "devices/min"],
        rows)

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        _merge_record(out, cluster_record)
        print("merged cluster record into {}".format(out))

    # The scale-out bar needs real cores; acceptance is a 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        speedup = throughput[WORKERS_GATE] / throughput[1]
        assert speedup >= SPEEDUP_FLOOR, (
            "expected >= {:.1f}x aggregate throughput at {} workers; "
            "got {:.2f}x ({:,.0f} vs {:,.0f} devices/min)".format(
                SPEEDUP_FLOOR, WORKERS_GATE, speedup,
                throughput[WORKERS_GATE], throughput[1]))
    return cluster_record


def bench_cluster_throughput(benchmark):
    """pytest-benchmark entry point (records the whole sweep)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_service.json"))
    run_experiment()
