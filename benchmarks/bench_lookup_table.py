"""Experiment D1 -- tester deployment (Section 3.3).

The paper proposes shipping the compacted-test acceptance region to
the tester as a grid lookup table "with little additional cost".  This
benchmark quantifies that: table size in tester memory, agreement with
the live SVM pair, and classification throughput of the table against
the live model.
"""

import time

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.mems import tests_at_temperature
from repro.tester import LookupTable


def bench_lookup_table_deployment(benchmark):
    """Build and validate the tester lookup table for the MEMS flow."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    compactor = Compactor(guard_band=0.03)
    model, _ = compactor.evaluate_subset(train, test, eliminated)

    lut = run_once(benchmark,
                   lambda: LookupTable(model, max_cells=250_000))

    values = test.project(lut.feature_names).values
    t0 = time.perf_counter()
    lut.classify(values)
    t_table = time.perf_counter() - t0
    t0 = time.perf_counter()
    model.predict_measurements(values)
    t_model = time.perf_counter() - t0

    print_table(
        "Tester lookup table (MEMS, hot+cold eliminated)",
        ["quantity", "value"],
        [("kept tests", len(lut.feature_names)),
         ("grid resolution", lut.resolution),
         ("cells", lut.n_cells),
         ("tester memory (kB)", lut.memory_bytes() / 1024.0),
         ("agreement with live model %",
          100 * lut.agreement_with_model(test)),
         ("table classify time (ms / 1000 devices)", 1e3 * t_table),
         ("live model time (ms / 1000 devices)", 1e3 * t_model),
         ("speedup", t_model / max(t_table, 1e-12))])

    assert lut.agreement_with_model(test) > 0.9
    assert lut.memory_bytes() < 1_000_000  # fits in tester memory
    assert t_table < t_model  # the point of the table
