"""Experiment F6 -- paper Fig. 6: accuracy vs training-set size.

The paper eliminates the 3-dB bandwidth test and plots yield loss,
defect escape and guard-band population while growing the training set
from a few hundred to 5000 instances; both error components fall
(noisily) with more data.
"""

import os

from benchmarks.harness import datasets, load_population, print_table, \
    run_once
from repro.core.compaction import TestCompactor as Compactor

#: The eliminated test of Fig. 6.
ELIMINATED = ("bw_3db",)
#: Training sizes swept at the default scale.
SIZES = (250, 500, 1000)
#: Extra sizes at REPRO_BENCH_SCALE=full (paper sweeps to 5000).
SIZES_FULL = (250, 500, 1000, 2000, 5000)


def bench_fig6_training_size_sweep(benchmark):
    """Sweep the training size for the bw_3db elimination."""
    full = os.environ.get("REPRO_BENCH_SCALE") == "full"
    sizes = SIZES_FULL if full else SIZES
    _, test = datasets("opamp")
    compactor = Compactor(guard_band=0.05)

    def sweep():
        rows = []
        for n in sizes:
            train = load_population("opamp", n, 1001)
            _, report = compactor.evaluate_subset(train, test, ELIMINATED)
            rows.append((n, 100 * report.yield_loss_rate,
                         100 * report.defect_escape_rate,
                         100 * report.guard_rate))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Fig. 6: accuracy vs number of training instances "
        "(bw_3db eliminated)",
        ["n_train", "yield loss %", "defect escape %", "guard band %"],
        rows)

    # Shape: the largest training set is at least as accurate as the
    # smallest (errors fall with data, allowing sampling noise).
    first_error = rows[0][1] + rows[0][2]
    last_error = rows[-1][1] + rows[-1][2]
    assert last_error <= first_error + 0.5
    # Error stays small in absolute terms for a single eliminated test.
    assert last_error < 2.0
