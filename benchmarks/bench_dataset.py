"""Experiment R7 -- the sharded data plane: generation and training.

Exercises the two promises of :mod:`repro.data` on the op-amp bench
(paper Fig. 1 populations) and records the evidence:

1. **Resumable shard-append generation.**  A population is generated
   cold into a shard store, then a *shorter* store is extended to the
   same size.  The extension must be file-for-file hash-identical to
   the cold store (asserted unconditionally) while simulating only the
   missing suffix -- its manifest event covers exactly the appended
   rows, and its instances/min come from the shared
   :class:`~repro.process.montecarlo.GenerationReport` accounting.
2. **Out-of-core training.**  The guard-banded strict/loose SVM pair
   is fitted twice: in RAM on the materialized
   :class:`~repro.process.dataset.SpecDataset`, and out-of-core on the
   memory-mapped :class:`~repro.data.ShardedSpecDataset` with a small
   kernel-column budget (the SMO precompute limit is lowered for the
   comparison so the bounded column cache actually serves the fit).
   Alphas, intercepts and per-device decisions must match **bitwise**
   -- asserted unconditionally in every environment.

Speed bars (extension beating cold regeneration wall-clock) are
measured only on hosts with >= 4 CPUs and skipped entirely under
``REPRO_BENCH_NO_SPEEDUP=1`` (the CI smoke, which also shrinks the
populations); the equivalence assertions above run everywhere.

The record is printed and, when ``REPRO_BENCH_JSON`` names a path (or
when run as a script), written as JSON -- the seed of the repo's
data-plane perf trajectory (CI uploads it as ``BENCH_dataset.json``).

Runnable directly (``python benchmarks/bench_dataset.py``) or through
pytest-benchmark like every other experiment here.
"""

import json
import os
import shutil
import tempfile
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_dataset.py` without an installed
    # package or PYTHONPATH (pytest gets these from pyproject.toml's
    # pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once, wall_time
from repro.data import ShardedSpecDataset, fit_guard_banded, generate_shards
from repro.data.generate import extend_shards
from repro.learn import smo
from repro.opamp import OpAmpBench
from repro.runtime import cpu_count

#: Acceptance bar: extending N -> M must beat cold-generating M by at
#: least the fraction of rows it never re-simulates (with slack).
EXTEND_SPEEDUP_FLOOR = 1.5

#: Full-mode sizes: cold store, prefix store, shard width.
N_FULL, N_PREFIX_FULL, SHARD_ROWS_FULL = 600, 300, 128

#: Equivalence-only (CI smoke) sizes.
N_SMOKE, N_PREFIX_SMOKE, SHARD_ROWS_SMOKE = 48, 20, 16

#: Kernel-column budget for the out-of-core fit: a few 64-column
#: blocks, far below the full Gram -- eviction pressure is the point.
COLUMN_BUDGET = 4 << 20


def _generation(root, n, n_prefix, shard_rows, seed):
    """Cold vs resumed generation; asserts hash identity, returns stats."""
    bench = OpAmpBench()
    cold_root = os.path.join(root, "cold")
    warm_root = os.path.join(root, "warm")
    cold, t_cold = wall_time(
        generate_shards, cold_root, bench, n, seed, shard_rows=shard_rows)
    generate_shards(warm_root, bench, n_prefix, seed,
                    shard_rows=shard_rows)
    warm, t_extend = wall_time(
        extend_shards, warm_root, bench, n)

    # The resumability contract, asserted in every environment: the
    # extended store is file-for-file hash-identical to the cold one.
    assert warm.shard_hashes() == cold.shard_hashes(), (
        "extending {} -> {} rows diverged from cold generation".format(
            n_prefix, n))
    event = warm.manifest.events[-1]
    assert event["op"] == "extend" and event["start"] == n_prefix, (
        "extension event should cover exactly the appended suffix")
    return {
        "n_rows": n,
        "n_prefix": n_prefix,
        "shard_rows": shard_rows,
        "n_shards": cold.n_shards,
        "cold_seconds": t_cold,
        "extend_seconds": t_extend,
        "cold_instances_per_minute":
            cold.manifest.events[-1]["instances_per_minute"],
        "extend_instances_per_minute": event["instances_per_minute"],
        "extend_speedup": t_cold / t_extend if t_extend > 0 else
            float("inf"),
        "hash_identical": True,
    }


def _training(store):
    """In-RAM vs out-of-core guard-banded fit; asserts bit identity."""
    dataset = store.to_dataset()
    features = list(store.names[:4])
    # Lower the precompute limit so the fit actually runs on streamed
    # kernel columns from the bounded cache (the whole point of the
    # out-of-core path); restored before returning.
    limit = smo.PRECOMPUTE_LIMIT
    smo.PRECOMPUTE_LIMIT = 16
    try:
        ram, t_ram = wall_time(
            fit_guard_banded, dataset, features, column_budget=None)
        ooc, t_ooc = wall_time(
            fit_guard_banded, store, features,
            column_budget=COLUMN_BUDGET)
    finally:
        smo.PRECOMPUTE_LIMIT = limit

    # The out-of-core contract, asserted in every environment: alphas,
    # intercepts and decisions are bitwise equal to the in-RAM fit.
    for attr in ("_strict", "_loose"):
        model_ram, model_ooc = getattr(ram, attr), getattr(ooc, attr)
        assert (model_ram.alpha_.tobytes()
                == model_ooc.alpha_.tobytes()), (
            "{} alphas diverged out-of-core".format(attr))
        assert model_ram.intercept_ == model_ooc.intercept_
    decisions_ram = ram.predict_dataset(dataset)
    decisions_ooc = ooc.predict_dataset(store.to_dataset())
    assert np.array_equal(decisions_ram, decisions_ooc)
    return {
        "n_rows": store.n_rows,
        "n_features": len(features),
        "column_budget_bytes": COLUMN_BUDGET,
        "in_ram_seconds": t_ram,
        "out_of_core_seconds": t_ooc,
        "alphas_bitwise_equal": True,
        "decisions_bitwise_equal": True,
    }


def run_experiment():
    """Execute both measurements; returns the JSON record."""
    smoke = bool(os.environ.get("REPRO_BENCH_NO_SPEEDUP"))
    if smoke:
        n, n_prefix, shard_rows = N_SMOKE, N_PREFIX_SMOKE, SHARD_ROWS_SMOKE
    else:
        n, n_prefix, shard_rows = N_FULL, N_PREFIX_FULL, SHARD_ROWS_FULL

    record = {
        "experiment": "bench_dataset",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "equivalence_only": smoke,
    }
    root = tempfile.mkdtemp(prefix="repro-bench-dataset-")
    try:
        generation = _generation(root, n, n_prefix, shard_rows, seed=42)
        record["generation"] = generation
        record["training"] = _training(
            ShardedSpecDataset(os.path.join(root, "cold")))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print_table(
        "R7: sharded data plane ({} CPUs available)".format(cpu_count()),
        ["stage", "rows", "seconds", "inst/min", "equivalent"],
        [("cold generate", n, generation["cold_seconds"],
          generation["cold_instances_per_minute"], "hash"),
         ("extend {}->{}".format(n_prefix, n), n - n_prefix,
          generation["extend_seconds"],
          generation["extend_instances_per_minute"], "hash"),
         ("fit in-RAM", n, record["training"]["in_ram_seconds"], "-",
          "bitwise"),
         ("fit out-of-core", n, record["training"]["out_of_core_seconds"],
          "-", "bitwise")])

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print("wrote {}".format(out))

    # Speed bar: resuming from the prefix must beat cold regeneration.
    # Timing-sensitive, so gated to real multi-core hosts and skipped
    # in the CI equivalence smoke.
    if not smoke and cpu_count() >= 4:
        speedup = record["generation"]["extend_speedup"]
        assert speedup >= EXTEND_SPEEDUP_FLOOR, (
            "expected extending {} -> {} rows to run >= {:g}x faster "
            "than cold generation; got {:.2f}x".format(
                n_prefix, n, EXTEND_SPEEDUP_FLOOR, speedup))
    return record


def bench_dataset(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_dataset.json"))
    run_experiment()
