"""Experiment F4 -- control-plane journal: append cost, replay speed.

The durability contract of ``repro serve --state-dir`` is paid for on
two clocks: every acked control-plane operation costs one fsync'd
append (the serving-path price), and every restart costs one full
journal scan (checksum + sequence validation) before the first request
is answered (the recovery price).  This experiment measures both at
increasing journal lengths, plus the torn-tail recovery scan a
``kill -9`` mid-append leaves behind, and asserts the replay is exact:
``manifest_from_ops`` over the recovered records reproduces the
newest-active history the appends built, element for element.

The record is merged into ``BENCH_service.json`` under a ``"journal"``
key (read-modify-write), alongside the service and cluster
trajectories.

Runnable directly (``python benchmarks/bench_journal_replay.py``) or
through pytest-benchmark like every other experiment here.
"""

import json
import os
import tempfile
import time
import warnings

if __name__ == "__main__":
    # Allow `python benchmarks/bench_journal_replay.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks.harness import print_table, run_once, wall_time
from repro.runtime import cpu_count
from repro.service import JournalWarning, StateJournal
from repro.service.durability import JOURNAL_FILE, _encode

#: Journal lengths (control-plane ops) the scan cost is measured at.
#: Thousands of ops is already far beyond any real deployment's
#: hot-swap history; recovery must stay interactive there.
N_OPS = (200, 2000)

#: Devices cycled through the synthetic hot-swap history.
N_DEVICES = 8


def _write_history(state_dir, n_ops):
    """Append a valid ``n_ops``-long hot-swap history; returns the
    seconds spent appending (fsync per op included)."""
    journal = StateJournal(state_dir)
    versions = {}

    def one_op(index):
        device = "dev{}".format(index % N_DEVICES)
        if index % 5 == 4 and versions.get(device):
            journal.append("retire", device, versions[device][-1])
            versions[device].pop()
            return
        version = str(len(versions.setdefault(device, [])) + index)
        journal.append("register", device, version,
                       path="{}.rtp".format(device))
        versions[device].append(version)

    start = time.perf_counter()
    for index in range(n_ops):
        one_op(index)
    elapsed = time.perf_counter() - start
    journal.close()
    return elapsed


def _tear_tail(state_dir):
    """Append half an encoded record -- the kill -9 on-disk shape."""
    line = _encode({"seq": 10 ** 6, "op": "retire", "device": "devX",
                    "version": "1"})
    with open(os.path.join(str(state_dir), JOURNAL_FILE), "ab") as handle:
        handle.write(line[: len(line) // 2])


def run_experiment():
    rows = []
    record = {"n_devices": N_DEVICES, "lengths": {}}
    for n_ops in N_OPS:
        with tempfile.TemporaryDirectory() as state_dir:
            append_s = _write_history(state_dir, n_ops)

            # Clean recovery: open + full checksum/sequence scan.
            journal, replay_s = wall_time(StateJournal, state_dir)
            ops = journal.replay()
            assert len(ops) == n_ops
            manifest = StateJournal.manifest_from_ops(ops)
            assert manifest, "replay lost the registered history"
            journal.close()

            # Torn-tail recovery: the scan must also truncate the
            # partial record a crash mid-append left behind, and lose
            # nothing that was acked.
            _tear_tail(state_dir)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", JournalWarning)
                torn_journal, torn_s = wall_time(StateJournal, state_dir)
            assert len(torn_journal) == n_ops
            recovered = StateJournal.manifest_from_ops(
                torn_journal.replay())
            assert [(m["device"], m["version"], m["retired"])
                    for m in recovered] == [
                (m["device"], m["version"], m["retired"])
                for m in manifest]
            torn_journal.close()

        appends_per_s = n_ops / append_s
        rows.append([n_ops, appends_per_s, append_s / n_ops * 1e3,
                     replay_s * 1e3, torn_s * 1e3])
        record["lengths"][str(n_ops)] = {
            "append_s": append_s,
            "appends_per_s": appends_per_s,
            "fsync_append_ms": append_s / n_ops * 1e3,
            "replay_ms": replay_s * 1e3,
            "torn_recovery_ms": torn_s * 1e3,
        }

    print_table(
        "F4: control-plane journal append + replay ({} CPUs available)"
        .format(cpu_count()),
        ["ops", "appends/s", "append ms", "replay ms", "torn ms"],
        rows)

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        _merge_record(out, record)
        print("merged journal record into {}".format(out))
    return record


def _merge_record(path, journal_record):
    """Read-modify-write: fold the journal record into the service
    bench's JSON file (or start a fresh record when absent)."""
    record = {}
    if os.path.isfile(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict):
                record = existing
        except (OSError, json.JSONDecodeError):
            record = {}
    record.setdefault("experiment", "bench_service_throughput")
    record.setdefault("unix_time", time.time())
    record.setdefault("cpus", cpu_count())
    record["journal"] = journal_record
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    return record


def bench_journal_replay(benchmark):
    """pytest-benchmark entry point (records the whole sweep)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_service.json"))
    run_experiment()
