"""Experiment R2 -- deterministic parallel Monte-Carlo generation.

Runs the same Monte-Carlo population builds (paper Fig. 1) serially
and through the :mod:`repro.runtime.simulation` process fan-out, and
compares wall-clock time and results:

1. op-amp population, serial (``n_jobs=1``) -- the expensive case,
   ~5 circuit analyses per instance;
2. the same population with ``n_jobs`` workers -- **bit-identical by
   construction** (per-instance ``SeedSequence`` streams);
3. a device x lot batch through the :func:`repro.process.montecarlo.
   generate_many` scheduler, serial vs. parallel.

Result equivalence is asserted unconditionally in every environment;
the >= 2x speedup assertion needs real cores and fires only on
machines with at least four CPUs (mirroring
``bench_parallel_compaction.py``).

Runnable directly (``python benchmarks/bench_parallel_generation.py``)
or through pytest-benchmark like every other experiment here.
"""

import os

if __name__ == "__main__":
    # Allow `python benchmarks/bench_parallel_generation.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once, wall_time
from repro.mems import AccelerometerBench
from repro.opamp import OpAmpBench
from repro.process.montecarlo import generate_dataset, generate_many
from repro.runtime import cpu_count

#: Instances in the single-population comparison (op-amp: ~56 ms each).
N_OPAMP = 48
#: Per-lot sizes for the generate_many batch comparison.
LOT_SIZES = ((N_OPAMP, 1001), (N_OPAMP // 2, 2002))
#: Worker count for the parallel modes.
N_JOBS = min(4, cpu_count())


def run_experiment():
    """Execute all modes; returns the printed rows as structured data."""
    opamp = OpAmpBench()
    mems = AccelerometerBench()

    serial, t_serial = wall_time(
        generate_dataset, opamp, N_OPAMP, 42)
    parallel, t_par = wall_time(
        generate_dataset, opamp, N_OPAMP, 42, n_jobs=N_JOBS)

    requests = [(opamp, n, seed) for n, seed in LOT_SIZES] + \
        [(mems, 200, 7)]
    lots_serial, t_lots_serial = wall_time(generate_many, requests)
    lots_par, t_lots_par = wall_time(
        generate_many, requests, n_jobs=N_JOBS)

    rows = [
        ("opamp x{} serial".format(N_OPAMP), t_serial, 1.0),
        ("opamp x{} n_jobs={}".format(N_OPAMP, N_JOBS), t_par,
         t_serial / t_par),
        ("generate_many {} lots serial".format(len(requests)),
         t_lots_serial, 1.0),
        ("generate_many {} lots n_jobs={}".format(len(requests), N_JOBS),
         t_lots_par, t_lots_serial / t_lots_par),
    ]
    print_table(
        "R2: parallel Monte-Carlo generation ({} CPUs available)".format(
            cpu_count()),
        ["mode", "seconds", "speedup"], rows)

    # Serial/parallel equivalence is non-negotiable in every
    # environment: per-instance seeding makes the datasets
    # byte-identical at any worker count.
    assert np.array_equal(serial.values, parallel.values)
    assert np.array_equal(serial.labels, parallel.labels)
    for a, b in zip(lots_serial, lots_par):
        assert np.array_equal(a.values, b.values)

    # Speedup needs real cores; the acceptance bar is a 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        assert t_serial / t_par >= 2.0 or \
            t_lots_serial / t_lots_par >= 2.0, (
                "expected >=2x from parallel generation; got "
                "single-population {:.2f}x, batch {:.2f}x".format(
                    t_serial / t_par, t_lots_serial / t_lots_par))
    return rows


def bench_parallel_generation(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    run_experiment()
