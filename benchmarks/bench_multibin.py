"""Experiment R6 -- one-vs-rest grade bank vs K independent cold fits.

A K-bin disposition program needs K "grade g vs rest" SVCs over the
same training rows.  :class:`repro.learn.ovr.OneVsRestSVCBank` shares
the (n, n) RBF Gram matrix across the K fits and warm-starts each SMO
solve from the previous bin's dual vector; this experiment measures
the combined effect against the unoptimized construction (K separate
``SVC`` fits, each building its own Gram from a cold start).

Equivalence is asserted unconditionally in every environment: the
bank's argmax prediction must equal the cold construction's argmax on
a held-out query set, device for device -- the bank is an
*optimization*, never a model change.  The speedup bar is skipped
under ``REPRO_BENCH_NO_SPEEDUP=1`` (the CI equivalence smoke, which
also shrinks the training set); like the batched-kernel bench it runs
on a single core, so it is not gated on CPU count.

The grade geometry is corner-clustered: each grade's devices scatter
around a distinct process-corner centroid in measurement space (speed
grades track process corners, and corners cluster).  That puts the
fits in the regime the bank targets -- moderate SMO iteration counts,
so the K-fold repeated Gram build is a meaningful share of the cold
construction's cost.  Slab-shaped grade boundaries (pure single-spec
threshold cuts) are SMO-bound instead and gain little; the floor
never *needs* the bank there, since truth-bin assignment is exact and
free when grades are plain rule cuts over kept measurements.

Runnable directly (``python benchmarks/bench_multibin.py``) or
through pytest-benchmark like every other experiment here.
"""

import json
import os
import time

if __name__ == "__main__":
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once, wall_time
from repro.learn.ovr import OneVsRestSVCBank
from repro.learn.svm import SVC
from repro.runtime import cpu_count
from repro.runtime.kernel_cache import GramCache

#: Acceptance bar: bank fit vs K cold fits, single core.
SPEEDUP_FLOOR = 1.3

#: Full-mode geometry.
N_TRAIN = 800
N_QUERY = 300
N_FEATURES = 24
GRADES = ("FAST", "TYP", "SLOW", "REJECT")

#: Centroid scatter multiple: how far apart the grade corners sit.
CORNER_SEPARATION = 2.0

#: Equivalence-only (CI smoke) training size.
N_TRAIN_SMOKE = 160


def _factory():
    return SVC(C=10.0, gamma="scale")


def make_problem(n_train, n_query, seed=5):
    """Corner-clustered grade rows: (X, y, query).

    One centroid per grade, unit scatter around it -- each device's
    measurements reflect its process corner, queries drawn from the
    same mixture.
    """
    rng = np.random.default_rng(seed)
    per = n_train // len(GRADES)
    centers = rng.normal(0.0, 1.0,
                         (len(GRADES), N_FEATURES)) * CORNER_SEPARATION
    X = np.vstack([rng.normal(centers[k], 1.0, (per, N_FEATURES))
                   for k in range(len(GRADES))])
    y = np.asarray(GRADES, dtype=object).repeat(per)
    picks = rng.integers(0, len(GRADES), n_query)
    query = rng.normal(centers[picks], 1.0, (n_query, N_FEATURES))
    return X, y, query


def cold_fits(X, y, query):
    """The unoptimized construction: K cold SVCs, K Gram builds."""
    scores = np.empty((query.shape[0], len(GRADES)))
    for k, grade in enumerate(GRADES):
        model = _factory()
        model.fit(X, np.where(y == grade, 1.0, -1.0))
        scores[:, k] = model.decision_function(query)
    return scores.argmax(axis=1)


def bank_fit(X, y, query):
    """The bank: one shared Gram, warm-started SMO chain."""
    names = tuple("f{}".format(i) for i in range(X.shape[1]))
    cache = GramCache(X, names)
    bank = OneVsRestSVCBank(GRADES, model_factory=_factory,
                            gram_view=cache.view(names))
    bank.fit(X, y)
    return bank.predict_index(query)


def run_experiment():
    """Fit both constructions, compare; returns the JSON record."""
    smoke = bool(os.environ.get("REPRO_BENCH_NO_SPEEDUP"))
    n_train = N_TRAIN_SMOKE if smoke else N_TRAIN
    X, y, query = make_problem(n_train, N_QUERY)

    cold_idx, t_cold = wall_time(cold_fits, X, y, query)
    bank_idx, t_bank = wall_time(bank_fit, X, y, query)

    # The contract, asserted in every environment: identical grades.
    equivalent = bool(np.array_equal(cold_idx, bank_idx))
    assert equivalent, (
        "the shared-Gram/warm-start bank diverged from K cold "
        "one-vs-rest fits")

    record = {
        "experiment": "bench_multibin",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "equivalence_only": smoke,
        "n_train": n_train,
        "n_query": N_QUERY,
        "n_grades": len(GRADES),
        "cold_seconds": t_cold,
        "bank_seconds": t_bank,
        "speedup": t_cold / t_bank,
        "equivalent": equivalent,
    }

    print_table(
        "R6: OvR grade bank vs {} cold fits "
        "({} train rows, {} CPUs available)".format(
            len(GRADES), n_train, cpu_count()),
        ["construction", "seconds", "fits/min"],
        [("K cold SVCs", t_cold, 60.0 / t_cold),
         ("shared bank", t_bank, 60.0 / t_bank)])
    print("speedup: {:.2f}x".format(record["speedup"]))

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print("wrote {}".format(out))

    if not smoke:
        assert record["speedup"] >= SPEEDUP_FLOOR, (
            "expected >= {:g}x from Gram sharing + warm starts on {} "
            "rows x {} grades; got {:.2f}x".format(
                SPEEDUP_FLOOR, n_train, len(GRADES),
                record["speedup"]))
    return record


def bench_multibin(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    run_experiment()
