"""Experiment A7 -- ablation: two-model vs single-model guard bands.

The paper builds its guard band from **two** classifiers trained on
inward/outward-shifted ranges (Section 4.2).  A natural alternative is
a *single* classifier that flags devices within a decision-function
margin of the boundary.  This ablation compares the two schemes at a
matched guard budget (the single-model margin is calibrated so its
training guard fraction equals the two-model scheme's) on the MEMS
hot/cold elimination.
"""

import numpy as np

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.guardband import MarginGuardClassifier
from repro.core.metrics import GUARD, evaluate_predictions
from repro.mems import tests_at_temperature

GUARD_DELTA = 0.03


def bench_ablation_margin_guard(benchmark):
    """Two-model (paper) vs single-model margin guard banding."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    kept = [n for n in train.names if n not in set(eliminated)]

    def flow():
        compactor = Compactor(guard_band=GUARD_DELTA)
        two_model, two_report = compactor.evaluate_subset(
            train, test, eliminated)
        # Match the guard budget on the training population.
        budget = 1.0 - two_model.confident_fraction(train)
        budget = float(np.clip(budget, 0.01, 0.99))
        one_model = MarginGuardClassifier(
            kept, delta=GUARD_DELTA, target_guard_fraction=budget)
        one_model.fit(train)
        one_report = evaluate_predictions(
            test.labels, one_model.predict_dataset(test))
        return budget, two_report, one_report

    budget, two_report, one_report = run_once(benchmark, flow)
    print_table(
        "Ablation A7: guard-band construction at matched budget "
        "({:.1%} of training devices)".format(budget),
        ["scheme", "yield loss %", "defect escape %", "guard band %"],
        [("two shifted models (paper)",
          100 * two_report.yield_loss_rate,
          100 * two_report.defect_escape_rate,
          100 * two_report.guard_rate),
         ("single model + margin",
          100 * one_report.yield_loss_rate,
          100 * one_report.defect_escape_rate,
          100 * one_report.guard_rate)])

    # Both schemes control the confident-prediction error.
    assert two_report.error_rate < 0.02
    assert one_report.error_rate < 0.02
