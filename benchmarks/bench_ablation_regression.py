"""Experiment A4 -- ablation: classification vs regression (Sec. 4.1).

The paper argues that pass/fail analysis is a *classification* problem:
earlier statistical-test work regressed each eliminated specification's
value and thresholded it, which needs training data covering the whole
multi-dimensional space rather than just the class boundary.

The regression baseline here: ridge-regress every eliminated
specification on the kept measurements, threshold the predictions
against the acceptability ranges, and AND with the direct kept-range
check.  It is compared with the paper's SVM classification (both
without guard bands, to isolate the modeling question).
"""

import numpy as np

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.metrics import evaluate_predictions
from repro.learn import RidgeRegressor
from repro.mems import tests_at_temperature


def _regression_flow(train, test, eliminated):
    """Predict eliminated spec values with ridge, then threshold."""
    kept = [n for n in train.names if n not in set(eliminated)]
    specs = train.specifications
    kept_specs = specs.subset(kept)
    elim_specs = specs.subset(eliminated)

    X_train = train.normalized_values(kept)
    Y_train = train.project(list(eliminated)).values
    model = RidgeRegressor(alpha=1e-6).fit(X_train, Y_train)

    X_test = test.normalized_values(kept)
    predicted = model.predict(X_test)
    elim_pass = elim_specs.passes(predicted).all(axis=1)
    kept_pass = kept_specs.passes(test.project(kept).values).all(axis=1)
    predictions = np.where(elim_pass & kept_pass, 1, -1)
    return evaluate_predictions(test.labels, predictions)


#: Training sizes for the data-efficiency sweep (the heart of the
#: paper's Section 4.1 argument: classification needs boundary
#: coverage only, regression needs space-filling coverage).
TRAIN_SIZES = (50, 100, 300, 1000)


def bench_ablation_regression_vs_classification(benchmark):
    """Head-to-head on the MEMS hot+cold elimination (no guard band)."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)

    def sweep():
        rows = []
        for n in TRAIN_SIZES:
            sub = train.subset(range(min(n, len(train))))
            classifier = Compactor(guard_band=0.0)
            _, svm_report = classifier.evaluate_subset(sub, test,
                                                       eliminated)
            ridge_report = _regression_flow(sub, test, eliminated)
            rows.append((n, 100 * svm_report.error_rate,
                         100 * ridge_report.error_rate))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation A4: classification vs regression error vs training "
        "size (MEMS, hot+cold eliminated, no guard band)",
        ["n_train", "SVM classification error %",
         "ridge regression error %"],
        rows)

    # Both approaches end up plausible at full data; the *trend* is the
    # result (see EXPERIMENTS.md for the measured discussion).
    assert rows[-1][1] < 5.0
    assert rows[-1][2] < 20.0


def bench_ablation_regression_opamp(benchmark):
    """Same head-to-head on the op-amp (11-D, nonlinear couplings)."""
    train, test = datasets("opamp")
    eliminated = ("gain", "bw_3db", "ugf", "rise_time")

    def sweep():
        rows = []
        for n in TRAIN_SIZES:
            sub = train.subset(range(min(n, len(train))))
            classifier = Compactor(guard_band=0.0)
            _, svm_report = classifier.evaluate_subset(sub, test,
                                                       eliminated)
            ridge_report = _regression_flow(sub, test, eliminated)
            rows.append((n, 100 * svm_report.error_rate,
                         100 * ridge_report.error_rate))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation A4b: classification vs regression error vs training "
        "size (op-amp, gain/bw_3db/ugf/rise_time eliminated)",
        ["n_train", "SVM classification error %",
         "ridge regression error %"],
        rows)
    # Without guard bands this elimination is intrinsically errorful
    # (~5-8 % for either model); the guard band of A2 is what brings it
    # under 1 %.  Bound the raw model error loosely.
    assert rows[-1][1] < 12.0
    assert rows[-1][2] < 12.0
