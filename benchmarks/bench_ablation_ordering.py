"""Experiment A1 -- ablation: test-examination orders (Section 3.2).

The greedy loop's outcome depends on the order in which tests are
examined.  The paper uses device-functionality analysis; it also
sketches a classification-count order and a correlation-clustering
order.  This ablation compares all of them plus a seeded random
baseline, and contrasts with ad-hoc compaction (dropping tests with no
model), which exhibits uncontrolled defect escape.
"""

import numpy as np

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.metrics import evaluate_predictions
from repro.core.ordering import (
    ClassificationPowerOrder, ClusterOrder, RandomOrder,
)

TOLERANCE = 0.01
GUARD = 0.05


def _adhoc_report(train, test, dropped):
    """Drop tests with no model: plain range check on the kept ones."""
    kept = [n for n in train.names if n not in set(dropped)]
    kept_specs = test.specifications.subset(kept)
    passes = kept_specs.passes(test.project(kept).values).all(axis=1)
    return evaluate_predictions(test.labels, np.where(passes, 1, -1))


#: The ordering comparison runs one full greedy loop per strategy, so
#: it uses a subsampled population to keep the suite's runtime sane.
ORDERING_TRAIN_N = 400
ORDERING_TEST_N = 200


def bench_ablation_ordering(benchmark):
    """Compare ordering strategies on the op-amp compaction."""
    train_full, test_full = datasets("opamp")
    train = train_full.subset(range(min(ORDERING_TRAIN_N,
                                        len(train_full))))
    test = test_full.subset(range(min(ORDERING_TEST_N, len(test_full))))
    strategies = [
        ("functional (paper)", None),
        ("classification-power", ClassificationPowerOrder()),
        ("cluster (|r|>=0.8)", ClusterOrder(threshold=0.8)),
    ]

    def sweep():
        rows = []
        best = None
        for label, order in strategies:
            compactor = Compactor(tolerance=TOLERANCE,
                                      guard_band=GUARD, order=order)
            result = compactor.run(train, test)
            rows.append((label, len(result.eliminated),
                         100 * result.final_report.yield_loss_rate,
                         100 * result.final_report.defect_escape_rate,
                         100 * result.final_report.guard_rate))
            if best is None or len(result.eliminated) > len(best.eliminated):
                best = result
        return rows, best

    (rows, best) = run_once(benchmark, sweep)
    print_table(
        "Ablation A1: ordering strategies (op-amp, e_T={:.0%})".format(
            TOLERANCE),
        ["order", "eliminated", "yield loss %", "defect escape %",
         "guard band %"],
        rows)

    if best.eliminated:
        adhoc = _adhoc_report(train, test, best.eliminated)
        print("\nAd-hoc baseline dropping the same {} tests without a "
              "model: defect escape {:.2f} % (vs {:.2f} % with the "
              "model)".format(len(best.eliminated),
                              100 * adhoc.defect_escape_rate,
                              100 * best.final_report.defect_escape_rate))
        # The statistical model controls escapes; ad-hoc does not.
        assert (adhoc.defect_escape_rate
                >= best.final_report.defect_escape_rate)

    # Every ordering respects the tolerance.
    for _, _, yl, de, _ in rows:
        assert (yl + de) / 100.0 <= TOLERANCE + 1e-9
