"""Experiment A2 -- ablation: guard-band width (Section 4.2).

Sweeps the guard-band half-width ``delta`` for a fixed elimination on
both devices.  Expected trade-off: wider guard bands trap more
borderline devices (higher retest cost) but cut confident-prediction
errors; ``delta = 0`` exposes the raw model error the guard band is
designed to absorb.
"""

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.mems import tests_at_temperature

#: Guard-band widths swept (fractions of the acceptability range).
DELTAS = (0.0, 0.02, 0.05, 0.10)
#: Fixed op-amp elimination (the redundancy found by Fig. 5).
OPAMP_ELIMINATED = ("gain", "bw_3db", "ugf", "rise_time")


def _sweep(train, test, eliminated):
    rows = []
    for delta in DELTAS:
        compactor = Compactor(guard_band=delta)
        _, report = compactor.evaluate_subset(train, test, eliminated)
        rows.append((delta, 100 * report.yield_loss_rate,
                     100 * report.defect_escape_rate,
                     100 * report.guard_rate))
    return rows


def _check_tradeoff(rows):
    # Guard population grows with delta...
    guards = [row[3] for row in rows]
    assert guards == sorted(guards)
    # ...and the unguarded model (delta=0) has the largest total error.
    errors = [row[1] + row[2] for row in rows]
    assert errors[0] >= max(errors[1:]) - 1e-9


def bench_ablation_guardband_opamp(benchmark):
    """Guard-band sweep on the op-amp elimination."""
    train, test = datasets("opamp")
    rows = run_once(benchmark,
                    lambda: _sweep(train, test, OPAMP_ELIMINATED))
    print_table(
        "Ablation A2: guard-band width (op-amp, {} eliminated)".format(
            ", ".join(OPAMP_ELIMINATED)),
        ["delta", "yield loss %", "defect escape %", "guard band %"],
        rows)
    _check_tradeoff(rows)


def bench_ablation_guardband_mems(benchmark):
    """Guard-band sweep on the MEMS hot+cold elimination."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    rows = run_once(benchmark, lambda: _sweep(train, test, eliminated))
    print_table(
        "Ablation A2: guard-band width (MEMS, hot+cold eliminated)",
        ["delta", "yield loss %", "defect escape %", "guard band %"],
        rows)
    _check_tradeoff(rows)
