"""Experiment F2 -- floor-service throughput and served equivalence.

Deploys two synthetic test programs (one lookup-table, one live-model,
with *different* specification universes so routing bugs cannot cancel
out), hosts them in one in-process
:class:`~repro.service.server.FloorService`, and replays deterministic
mixed seed-tree traffic through the HTTP load generator at two
coalescing configurations:

1. **coalesced** -- large batches, patient latency window (the
   heavy-traffic shape);
2. **immediate** -- small batches, near-zero latency window (the
   interactive shape).

Equivalence is asserted unconditionally in every environment: at both
configurations and for both resident artifacts, every decision served
over HTTP is bit-identical to an offline
:class:`~repro.floor.engine.TestFloor` pass over the same devices
(``REPRO_BENCH_NO_SPEEDUP=1`` keeps exactly this and skips only the
throughput bar -- the CI "equivalence-only" mode).

The measured devices/min are printed everywhere and, when
``REPRO_BENCH_JSON`` names a path (or when run as a script), written
as a JSON record -- the seed of the repo's service-perf trajectory
(CI uploads it as the ``BENCH_service.json`` artifact).  The >= 50k
devices/min served-throughput bar fires only on >= 4-CPU machines,
mirroring the other ``bench_*`` experiments.

Runnable directly (``python benchmarks/bench_service_throughput.py``)
or through pytest-benchmark like every other experiment here.
"""

import asyncio
import json
import os
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_service_throughput.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks.harness import print_table, run_once
from repro.core.costmodel import TestCostModel as CostModel
from repro.core.pipeline import CompactionPipeline
from repro.learn import SVC
from repro.runtime import cpu_count
from repro.service import (
    ArtifactRegistry,
    FloorService,
    TrafficPlan,
    offline_reference,
    run_load,
)

from tests.synthetic import SyntheticDut, make_synthetic_dataset

#: Training / held-out population sizes per program build.
N_TRAIN, N_TEST = 800, 400
#: Devices replayed per artifact per coalescing configuration.
N_DEVICES = {"synthA": 1500, "synthB": 1000}
#: The two coalescing configurations under test.
CONFIGS = {
    "coalesced": dict(max_batch_size=512, max_latency=0.02),
    "immediate": dict(max_batch_size=16, max_latency=0.0005),
}
#: Served-throughput acceptance bar (devices per minute, over HTTP).
THROUGHPUT_FLOOR = 50_000
#: Concurrent keep-alive load-generator connections.
N_CLIENTS = 6


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (no per-fit tuning)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def _build_pair(n_specs, dut_seed, lookup_resolution=None):
    dut = SyntheticDut(n_specs=n_specs, seed=dut_seed)
    train = make_synthetic_dataset(n=N_TRAIN, n_specs=n_specs, seed=1,
                                   dut_seed=dut_seed)
    test = make_synthetic_dataset(n=N_TEST, n_specs=n_specs, seed=2,
                                  dut_seed=dut_seed)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=CostModel.uniform(train.names),
        device="synthetic", train_seed=1,
        lookup_resolution=lookup_resolution)
    return dut, artifact


def _run_config(registry, plans, config):
    async def main():
        service = FloorService(registry, **config)
        await service.start("127.0.0.1", 0)
        try:
            return await run_load("127.0.0.1", service.port, plans,
                                  n_clients=N_CLIENTS, max_chunk=12,
                                  seed=3)
        finally:
            await service.stop()

    return asyncio.run(main())


def run_experiment():
    """Execute both configurations; returns the structured results."""
    pair_a = _build_pair(n_specs=6, dut_seed=99, lookup_resolution=17)
    pair_b = _build_pair(n_specs=5, dut_seed=42)
    registry = ArtifactRegistry()
    registry.register("synthA", "1", pair_a[1])
    registry.register("synthB", "1", pair_b[1])
    plans = [
        TrafficPlan("synthA", pair_a[0], N_DEVICES["synthA"], seed=7,
                    reference=offline_reference(pair_a[1])),
        TrafficPlan("synthB", pair_b[0], N_DEVICES["synthB"], seed=8,
                    reference=offline_reference(pair_b[1])),
    ]

    rows = []
    record = {
        "experiment": "bench_service_throughput",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "n_clients": N_CLIENTS,
        "configs": {},
    }
    throughput = {}
    for name, config in CONFIGS.items():
        report = _run_config(registry, plans, config)
        # The contract, asserted in every environment: served
        # decisions are bit-identical to the offline floor for every
        # plan at every coalescing configuration.
        assert report.equivalent, (
            "config {!r} served decisions differing from the offline "
            "floor".format(name))
        throughput[name] = report.devices_per_minute
        rows.append((name, report.n_devices, report.n_requests,
                     report.wall_seconds, report.devices_per_minute))
        record["configs"][name] = {
            "max_batch_size": config["max_batch_size"],
            "max_latency_seconds": config["max_latency"],
            "n_devices": report.n_devices,
            "n_requests": report.n_requests,
            "n_retried": report.n_retried,
            "wall_seconds": report.wall_seconds,
            "devices_per_minute": report.devices_per_minute,
            "equivalent": report.equivalent,
        }
        # Per-request latency percentiles and sustained request rate
        # (empty only if no request succeeded, which the equivalence
        # assert above already rules out).
        record["configs"][name].update(report.latency_summary())

    print_table(
        "F2: floor-service throughput over HTTP ({} CPUs available)"
        .format(cpu_count()),
        ["config", "devices", "requests", "seconds", "devices/min"],
        rows)

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print("wrote {}".format(out))

    # The throughput bar needs real cores; acceptance is a 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        best = max(throughput.values())
        assert best >= THROUGHPUT_FLOOR, (
            "expected >= {:,} served devices/min; got {:,.0f}".format(
                THROUGHPUT_FLOOR, best))
    return record


def bench_service_throughput(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_service.json"))
    run_experiment()
