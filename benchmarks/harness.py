"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  Dataset
generation is the expensive part (each op-amp instance is five real
circuit simulations), so populations are cached on disk under
``.cache/`` as manifested shard stores keyed by device and seed
(:func:`repro.data.ensure_dataset`) -- the first benchmark run pays
the simulation cost, later runs memory-map from disk, and a larger
request *extends* the cached store instead of re-simulating it.

Scaling
-------

The paper uses 5000/1000 (op-amp) and 1000/1000 (MEMS) instances.  The
default benchmark scale is reduced to keep a full ``pytest
benchmarks/`` run in minutes; set ``REPRO_BENCH_SCALE=full`` to run at
paper scale (the cached full-size op-amp population takes ~5 minutes
to create on a laptop).  Whenever the cached store holds at least as
many rows as the request, the benchmark takes its head instead of
simulating; a shorter store is extended in place.

Set ``REPRO_BENCH_SIM_JOBS=N`` (``-1`` = all CPUs) to fan uncached
population generation out across worker processes through
:mod:`repro.runtime.simulation`, and ``REPRO_BENCH_SIM_ENGINE=batched``
to vectorize it through the batched MNA kernel
(:mod:`repro.circuit.batch`); per-instance seeding keeps every cached
population bit-identical to a serial scalar run, so the cache remains
valid at any worker count and either engine.
"""

import os
import time
from pathlib import Path

#: Cache directory for Monte-Carlo populations (repo-local).
CACHE_DIR = Path(__file__).resolve().parent.parent / ".cache"

#: (train, test) sizes per device at each scale.
SCALES = {
    "default": {"opamp": (1200, 500), "mems": (1000, 1000)},
    "full": {"opamp": (5000, 1000), "mems": (1000, 1000)},
}

#: Fixed generation seeds (train, test) per device.
SEEDS = {"opamp": (1001, 2002), "mems": (7, 8)}


def bench_scale():
    """The active scale name (``REPRO_BENCH_SCALE`` env override)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALES:
        raise ValueError("REPRO_BENCH_SCALE must be one of {}".format(
            sorted(SCALES)))
    return scale


def sim_jobs():
    """Worker processes for population generation (env override)."""
    return int(os.environ.get("REPRO_BENCH_SIM_JOBS", "1"))


def sim_engine():
    """Simulation engine for population generation (env override)."""
    return os.environ.get("REPRO_BENCH_SIM_ENGINE", "scalar")


def _make_bench(device):
    if device == "opamp":
        from repro.opamp import OpAmpBench

        return OpAmpBench()
    if device == "mems":
        from repro.mems import AccelerometerBench

        return AccelerometerBench()
    raise ValueError("unknown device {!r}".format(device))


def load_population(device, n, seed, n_jobs=None):
    """Load (or simulate and cache) a Monte-Carlo population.

    Populations live in manifested shard stores under ``.cache/``,
    one per ``(device, seed)``: a store holding at least ``n`` rows is
    memory-mapped and its first ``n`` rows returned (per-instance
    seeding makes the prefix identical to a fresh ``n``-row
    generation); a shorter store is *extended* -- only the shortfall
    is simulated.  ``n_jobs`` parallelizes that generation (default:
    the ``REPRO_BENCH_SIM_JOBS`` environment override) without
    changing any cached byte.
    """
    from repro.data import ensure_dataset

    CACHE_DIR.mkdir(exist_ok=True)
    bench = _make_bench(device)
    store = ensure_dataset(
        CACHE_DIR, bench, n, seed,
        n_jobs=sim_jobs() if n_jobs is None else n_jobs,
        engine=sim_engine())
    return store.head(n)


def datasets(device, scale=None, n_jobs=None):
    """(train, test) populations for ``device`` at the active scale."""
    scale = scale or bench_scale()
    n_train, n_test = SCALES[scale][device]
    seed_train, seed_test = SEEDS[device]
    train = load_population(device, n_train, seed_train, n_jobs=n_jobs)
    test = load_population(device, n_test, seed_test, n_jobs=n_jobs)
    return train, test


def print_table(title, header, rows):
    """Uniform fixed-width experiment-output printer."""
    print("\n=== {} ===".format(title))
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append("{:.3f}".format(value).ljust(w))
            else:
                cells.append(str(value).ljust(w))
        print("  ".join(cells))


def wall_time(fn, *args, **kwargs):
    """``(result, seconds)`` of one call, on the wall clock.

    The speedup benchmarks compare whole alternative execution modes
    (serial compactor vs. cache-aware engine vs. process fan-out), so
    a single monotonic wall-clock measurement per mode is the honest
    unit -- pytest-benchmark's statistical repetition machinery would
    re-run multi-minute flows for digits nobody needs.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments here are deterministic end-to-end flows, not
    microbenchmarks; a single round keeps the suite fast while still
    recording a wall-clock figure per table/figure.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
