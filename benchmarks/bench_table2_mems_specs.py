"""Experiment T2 -- paper Table 2: accelerometer specifications.

Regenerates the accelerometer specification table by measuring the
nominal design at all three temperatures, and reports the Monte-Carlo
yields (paper: 77.4 % train / 79.3 % test).
"""

from benchmarks.harness import datasets, print_table, run_once
from repro.mems import MEMS_SPECIFICATIONS, measure_accelerometer


def bench_table2_nominal_specs(benchmark):
    """Measure the nominal accelerometer; print the Table 2 rows."""
    values = run_once(benchmark, measure_accelerometer)

    rows = []
    for spec in MEMS_SPECIFICATIONS:
        rows.append((spec.name, spec.unit, values[spec.name],
                     "{:g} .. {:g}".format(spec.low, spec.high)))
    print_table(
        "Table 2: accelerometer specifications at -40/27/80 C",
        ["test", "unit", "measured nominal", "range"],
        rows)

    for spec in MEMS_SPECIFICATIONS:
        assert spec.contains(values[spec.name]), spec.name


def bench_table2_population_yields(benchmark):
    """Report yields (paper: 77.4 % train / 79.3 % test)."""
    train, test = run_once(benchmark, lambda: datasets("mems"))
    print_table(
        "Table 2 companion: population yields",
        ["population", "instances", "yield %"],
        [("train", len(train), 100 * train.yield_fraction),
         ("test", len(test), 100 * test.yield_fraction)])
    assert 0.65 < train.yield_fraction < 0.90
    assert 0.65 < test.yield_fraction < 0.90
