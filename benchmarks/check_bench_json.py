"""Schema check for the committed ``benchmarks/BENCH_*.json`` records.

The BENCH files are the repo's perf trajectory: every benchmark run
merges its numbers into one of them, CI uploads them as artifacts, and
regressions are read off their diffs.  A malformed record -- a missing
identity key, a NaN that crept in through a zero-division, an
``Infinity`` that ``json.dump`` happily wrote (it is not valid JSON to
a strict parser) -- silently poisons that trajectory.

This checker holds every record to the small shared schema:

* the file parses as strict JSON (``NaN``/``Infinity`` literals are
  rejected) and its top level is an object;
* the identity keys ``experiment`` (non-empty string), ``unix_time``
  (finite number) and ``cpus`` (positive integer) are present;
* recursively, every number anywhere in the record is finite.

Run as a script (CI's ``bench-json-check`` step)::

    python benchmarks/check_bench_json.py            # checks BENCH_*.json
    python benchmarks/check_bench_json.py path.json  # checks named files

Exit status 0 when every file passes; 1 with one line per violation
otherwise.  The functions are importable and unit-tested in
``tests/test_bench_json.py``.
"""

import glob
import json
import math
import os
import sys

#: Keys every BENCH record must carry at the top level.
REQUIRED_KEYS = ("experiment", "unix_time", "cpus")


def _walk_numbers(value, path):
    """Yield ``(json_path, number)`` for every number in the record."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, value
    elif isinstance(value, dict):
        for key in value:
            yield from _walk_numbers(value[key], "{}.{}".format(path, key))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _walk_numbers(item, "{}[{}]".format(path, index))


def validate_record(record):
    """Schema violations of one parsed BENCH record (empty = valid)."""
    problems = []
    if not isinstance(record, dict):
        return ["top level is {}, not an object".format(
            type(record).__name__)]
    for key in REQUIRED_KEYS:
        if key not in record:
            problems.append("missing required key {!r}".format(key))
    experiment = record.get("experiment")
    if "experiment" in record and not (
            isinstance(experiment, str) and experiment.strip()):
        problems.append("'experiment' must be a non-empty string")
    cpus = record.get("cpus")
    if "cpus" in record and not (
            isinstance(cpus, int) and not isinstance(cpus, bool)
            and cpus >= 1):
        problems.append("'cpus' must be a positive integer")
    for path, number in _walk_numbers(record, "$"):
        if not math.isfinite(number):
            problems.append("non-finite number {} at {}".format(number, path))
    return problems


def check_file(path):
    """Schema violations of one BENCH file on disk (empty = valid)."""
    try:
        with open(path) as handle:
            # parse_constant fires only on NaN/Infinity/-Infinity:
            # reject them at the parser so a record that *other*
            # strict JSON parsers cannot read never passes.
            record = json.load(
                handle,
                parse_constant=lambda name: (_ for _ in ()).throw(
                    ValueError("non-finite JSON literal {}".format(name))),
            )
    except (OSError, ValueError) as exc:
        return ["unreadable: {}".format(exc)]
    return validate_record(record)


def main(argv):
    paths = argv or sorted(
        glob.glob(os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_*.json")))
    if not paths:
        print("check_bench_json: no BENCH_*.json files found")
        return 1
    failures = 0
    for path in paths:
        problems = check_file(path)
        for problem in problems:
            print("{}: {}".format(path, problem))
        failures += len(problems)
        if not problems:
            print("{}: ok".format(path))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
