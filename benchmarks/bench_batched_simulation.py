"""Experiment R5 -- batched MNA simulation kernel throughput.

Generates the same Monte-Carlo populations (paper Fig. 1) through the
scalar per-instance simulator and through the batched MNA kernel
(``engine="batched"``: every Newton iteration, frequency point and
time step of the whole population is one stacked LAPACK call), and
compares wall clock and results:

1. op-amp population -- the expensive case, five full circuit analyses
   per instance, and the PR's acceptance gate: **>= 3x** on a single
   core at 200 instances;
2. accelerometer population -- three temperature insertions of stacked
   AC sweeps per instance.

Equivalence is asserted unconditionally in every environment: the
batched dataset must equal the scalar dataset **exactly** (the MOSFET/
R/L/C netlists of both benches meet the kernel's bit-parity contract;
per-slot seeding makes resamples line up too).  The speedup bar is
skipped only under ``REPRO_BENCH_NO_SPEEDUP=1`` (the CI equivalence
smoke, which also shrinks the populations) -- unlike the process-
fan-out benches it needs no extra cores, so it is *not* gated on CPU
count.

The measured instances/min are printed and, when ``REPRO_BENCH_JSON``
names a path (or when run as a script), written as a JSON record --
the seed of the repo's generation-perf trajectory (CI uploads it as
the ``BENCH_sim.json`` artifact).

Runnable directly (``python benchmarks/bench_batched_simulation.py``)
or through pytest-benchmark like every other experiment here.
"""

import json
import os
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_batched_simulation.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once, wall_time
from repro.mems import AccelerometerBench
from repro.opamp import OpAmpBench
from repro.process.montecarlo import generate_dataset
from repro.runtime import cpu_count

#: Acceptance bar: batched op-amp generation on one core.
SPEEDUP_FLOOR = 3.0

#: Full-mode population sizes (the op-amp size is the acceptance gate).
N_OPAMP = 200
N_MEMS = 400

#: Equivalence-only (CI smoke) population sizes.
N_OPAMP_SMOKE = 6
N_MEMS_SMOKE = 40


def _compare(name, bench, n, seed):
    """Scalar vs batched generation of one population; returns a row."""
    scalar, t_scalar = wall_time(
        generate_dataset, bench, n, seed, max_failures=max(10, n))
    batched, t_batched = wall_time(
        generate_dataset, bench, n, seed, max_failures=max(10, n),
        engine="batched")
    # The contract, asserted in every environment: the batched kernel
    # reproduces the scalar dataset exactly -- values and labels.
    equivalent = (np.array_equal(scalar.values, batched.values)
                  and np.array_equal(scalar.labels, batched.labels))
    assert equivalent, (
        "batched {} generation diverged from the scalar path".format(
            name))
    return {
        "n_instances": n,
        "seed": seed,
        "scalar_seconds": t_scalar,
        "batched_seconds": t_batched,
        "scalar_instances_per_minute": 60.0 * n / t_scalar,
        "batched_instances_per_minute": 60.0 * n / t_batched,
        "speedup": t_scalar / t_batched,
        "equivalent": equivalent,
    }


def run_experiment():
    """Execute both device comparisons; returns the JSON record."""
    smoke = bool(os.environ.get("REPRO_BENCH_NO_SPEEDUP"))
    n_opamp = N_OPAMP_SMOKE if smoke else N_OPAMP
    n_mems = N_MEMS_SMOKE if smoke else N_MEMS

    record = {
        "experiment": "bench_batched_simulation",
        "unix_time": time.time(),
        "cpus": cpu_count(),
        "equivalence_only": smoke,
        "devices": {},
    }
    record["devices"]["opamp"] = _compare(
        "opamp", OpAmpBench(), n_opamp, seed=42)
    record["devices"]["mems"] = _compare(
        "mems", AccelerometerBench(), n_mems, seed=7)

    rows = [(name, stats["n_instances"], stats["scalar_seconds"],
             stats["batched_seconds"],
             stats["batched_instances_per_minute"], stats["speedup"])
            for name, stats in record["devices"].items()]
    print_table(
        "R5: batched MNA kernel vs scalar generation "
        "({} CPUs available)".format(cpu_count()),
        ["device", "instances", "scalar s", "batched s",
         "batched inst/min", "speedup"],
        rows)

    out = os.environ.get("REPRO_BENCH_JSON")
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print("wrote {}".format(out))

    # The acceptance bar: single-core batching, so no CPU-count gate --
    # only the CI equivalence smoke skips it.
    if not smoke:
        speedup = record["devices"]["opamp"]["speedup"]
        assert speedup >= SPEEDUP_FLOOR, (
            "expected >= {:g}x from the batched kernel on {} op-amp "
            "instances; got {:.2f}x".format(SPEEDUP_FLOOR, n_opamp,
                                            speedup))
    return record


def bench_batched_simulation(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    os.environ.setdefault(
        "REPRO_BENCH_JSON",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "BENCH_sim.json"))
    run_experiment()
