"""Experiment F1 -- streaming test-floor throughput and equivalence.

Trains a compacted program on a fast synthetic device, deploys it as a
:class:`~repro.floor.artifact.TestProgramArtifact`, and pushes a
pre-materialized synthetic device stream through the
:class:`~repro.floor.engine.TestFloor` in both serving modes:

1. **live model** -- the batched guard-banded SVM pair;
2. **lookup table** -- the paper Section 3.3 grid deployment.

Equivalence is asserted unconditionally in every environment:

* decisions are identical at every ``batch_size`` in both modes;
* an artifact reloaded from disk dispositions identically;
* simulated traffic through the seed-tree scheduler is identical
  serial vs. parallel (``n_jobs=2``).

The >= 100k devices/min throughput bar needs dedicated cores to be a
fair measurement and fires only on machines with at least four CPUs
(mirroring the other ``bench_parallel_*`` experiments); the measured
numbers are printed everywhere.

Runnable directly (``python benchmarks/bench_floor_throughput.py``) or
through pytest-benchmark like every other experiment here.
"""

import os
import tempfile

if __name__ == "__main__":
    # Allow `python benchmarks/bench_floor_throughput.py` without an
    # installed package or PYTHONPATH (pytest gets these from
    # pyproject.toml's pythonpath setting instead).
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import numpy as np

from benchmarks.harness import print_table, run_once
from repro.core.costmodel import TestCostModel as CostModel
from repro.core.pipeline import CompactionPipeline
from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.learn import SVC
from repro.runtime import cpu_count

from tests.synthetic import SyntheticDut, make_synthetic_dataset

#: Training / held-out population sizes for the program build.
N_TRAIN, N_TEST = 1500, 800
#: Devices in the pre-materialized throughput stream.
N_STREAM = 120_000
#: Devices in the (slower, per-instance seeded) simulated-traffic
#: equivalence check.
N_SIMULATED = 2_000
#: The acceptance bar: dispositioned devices per minute.
THROUGHPUT_FLOOR = 100_000


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (no per-fit tuning)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def _build_artifact():
    train = make_synthetic_dataset(n=N_TRAIN, seed=1)
    test = make_synthetic_dataset(n=N_TEST, seed=2)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=CostModel.uniform(train.names),
        device="synthetic", train_seed=1, lookup_resolution=21)
    return artifact


def _synthetic_stream(dut, n):
    """A pre-materialized device stream (vectorized draw, no sim loop).

    Throughput here measures *disposition*, not device simulation, so
    the stream must be cheap: one vectorized linear map, same
    distribution the synthetic DUT samples per instance.
    """
    rng = np.random.default_rng(77)
    return rng.normal(0.0, 1.0, (n, dut.n_latent)) @ dut.map


def run_experiment():
    """Execute all modes; returns the printed rows as structured data."""
    dut = SyntheticDut()
    artifact = _build_artifact()
    stream = _synthetic_stream(dut, N_STREAM)

    rows = []
    decisions = {}
    throughput = {}
    for mode, use_lookup in (("live model", False), ("lookup", True)):
        floor = Floor(artifact, use_lookup=use_lookup)
        report = floor.run_stream([stream], lot=mode,
                                  keep_decisions=True)
        decisions[mode] = report.decisions
        throughput[mode] = report.devices_per_minute
        rows.append((mode, report.n_devices, report.wall_seconds,
                     report.devices_per_minute))

        # Equivalence 1: batch size never changes a decision.
        for batch_size in (1024, 65536):
            again = floor.run_stream([stream], batch_size=batch_size,
                                     lot=mode, keep_decisions=True)
            assert np.array_equal(again.decisions, report.decisions), \
                "batch_size={} changed decisions in {} mode".format(
                    batch_size, mode)

    # Equivalence 2: a reloaded artifact dispositions identically.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "program.rtp")
        artifact.save(path)
        reloaded = Floor(Artifact.load(path), use_lookup=False)
        again = reloaded.run_stream([stream], lot="reloaded",
                                    keep_decisions=True)
        assert np.array_equal(again.decisions, decisions["live model"])

    # Equivalence 3: simulated traffic is worker-count independent.
    floor = Floor(artifact, use_lookup=False, monitor=False)
    serial = floor.run_simulated(dut, N_SIMULATED, seed=5,
                                 keep_decisions=True)
    parallel = floor.run_simulated(dut, N_SIMULATED, seed=5, n_jobs=2,
                                   keep_decisions=True)
    assert np.array_equal(serial.decisions, parallel.decisions)

    print_table(
        "F1: test-floor throughput ({} CPUs available)".format(
            cpu_count()),
        ["mode", "devices", "seconds", "devices/min"], rows)

    # The throughput bar needs real cores; acceptance is a 4-core run.
    if cpu_count() >= 4 and not os.environ.get("REPRO_BENCH_NO_SPEEDUP"):
        best = max(throughput.values())
        assert best >= THROUGHPUT_FLOOR, (
            "expected >= {:,} devices/min on the synthetic stream; "
            "got {:,.0f}".format(THROUGHPUT_FLOOR, best))
    return rows


def bench_floor_throughput(benchmark):
    """pytest-benchmark entry point (records the whole comparison)."""
    run_once(benchmark, run_experiment)


if __name__ == "__main__":
    run_experiment()
