"""Experiment A5 -- future work: distribution-based guard bands.

The paper's future work proposes estimating the guard-band region from
the device distribution instead of a fixed percentage of every range.
This benchmark compares the fixed 3 % band against distribution-based
bands targeting the same average coverage, on the MEMS hot/cold
elimination.  The distribution-based bands should spend their retest
budget where the population actually crowds the limits.
"""

from benchmarks.harness import datasets, print_table, run_once
from repro.core.compaction import TestCompactor as Compactor
from repro.core.guardband import distribution_guard_deltas
from repro.mems import tests_at_temperature


def bench_adaptive_guardband(benchmark):
    """Fixed vs distribution-based guard bands on the MEMS flow."""
    train, test = datasets("mems")
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)

    def sweep():
        rows = []
        for label, delta in [
                ("fixed 3 %", 0.03),
                ("distribution 5 %",
                 distribution_guard_deltas(train, 0.05)),
                ("distribution 10 %",
                 distribution_guard_deltas(train, 0.10))]:
            compactor = Compactor(guard_band=delta)
            _, report = compactor.evaluate_subset(train, test, eliminated)
            rows.append((label, 100 * report.yield_loss_rate,
                         100 * report.defect_escape_rate,
                         100 * report.guard_rate))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        "Ablation A5: fixed vs distribution-based guard bands "
        "(MEMS, hot+cold eliminated)",
        ["guard band", "yield loss %", "defect escape %", "guard band %"],
        rows)
    deltas = distribution_guard_deltas(train, 0.05)
    widest = max(deltas, key=deltas.get)
    narrowest = min(deltas, key=deltas.get)
    print("\nPer-spec distribution deltas range from {:.3f} ({}) to "
          "{:.3f} ({})".format(deltas[narrowest], narrowest,
                               deltas[widest], widest))

    # Both adaptive settings keep errors controlled.
    for label, yl, de, guard in rows:
        assert yl + de < 1.0, label
    # A wider coverage target traps more devices.
    assert rows[2][3] >= rows[1][3]
